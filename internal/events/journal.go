package events

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Journal segment naming: events-000042.jsonl. The sequence number orders
// segments for offline scans and rotation pruning.
const (
	segmentPrefix = "events-"
	segmentSuffix = ".jsonl"
	segmentDigits = 6
)

// Fsync policies. The journal always writes through a plain append — the
// policy only decides when the file is flushed to stable storage.
const (
	// FsyncNever leaves flushing to the OS page cache (default): cheapest,
	// loses at most the unflushed tail on power loss — which reopen
	// tolerates by construction.
	FsyncNever = "never"
	// FsyncRotate fsyncs a segment once, when it is rotated out (and on
	// Close): bounded loss of one segment's tail.
	FsyncRotate = "rotate"
	// FsyncAlways fsyncs after every event: maximum durability, pays one
	// fsync per query.
	FsyncAlways = "always"
)

// ValidFsync reports whether s names a supported fsync policy.
func ValidFsync(s string) bool {
	return s == FsyncNever || s == FsyncRotate || s == FsyncAlways
}

// JournalOptions tunes a journal. Zero values select the defaults.
type JournalOptions struct {
	// RotateBytes rotates the active segment once it exceeds this size.
	RotateBytes int64
	// KeepFiles bounds retained segments; the oldest are pruned.
	KeepFiles int
	// Fsync is one of the Fsync* policies.
	Fsync string
}

// Journal defaults: 4 MiB segments, 8 retained, no fsync.
const (
	DefaultRotateBytes = 4 << 20
	DefaultKeepFiles   = 8
)

func (o JournalOptions) withDefaults() JournalOptions {
	if o.RotateBytes <= 0 {
		o.RotateBytes = DefaultRotateBytes
	}
	if o.KeepFiles <= 0 {
		o.KeepFiles = DefaultKeepFiles
	}
	if o.Fsync == "" {
		o.Fsync = FsyncNever
	}
	return o
}

// Journal is the crash-safe, append-only JSONL half of the flight recorder:
// one event per line, size-rotated segments, a configurable fsync policy.
// Opening an existing journal resumes the newest segment; a torn tail line
// (a write interrupted by a crash) is truncated away and counted in
// desword_events_dropped_total, so every line a reader ever sees is a
// complete JSON document.
type Journal struct {
	dir  string
	opts JournalOptions

	mu   sync.Mutex
	f    *os.File // guarded by mu; active segment
	seq  int      // guarded by mu
	size int64    // guarded by mu
}

// OpenJournal opens (or creates) the journal in dir. The directory is
// created if missing. If segments exist, appending resumes on the newest
// one after tail recovery.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	opts = opts.withDefaults()
	if !ValidFsync(opts.Fsync) {
		return nil, fmt.Errorf("events: unknown fsync policy %q (want %s|%s|%s)",
			opts.Fsync, FsyncNever, FsyncRotate, FsyncAlways)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("events: creating journal dir: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		newest := segs[len(segs)-1]
		j.seq = newest.Seq
		dropped, rerr := recoverTail(newest.Path)
		if rerr != nil {
			return nil, rerr
		}
		if dropped {
			mDropped.Inc()
		}
	} else {
		j.seq = 1
	}
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Segment names one journal file.
type Segment struct {
	Seq  int
	Path string
}

// ListSegments returns the journal segments under dir, oldest first.
func ListSegments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("events: listing journal dir: %w", err)
	}
	segs := make([]Segment, 0, len(entries))
	for _, e := range entries {
		seq, ok := segmentSeq(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		segs = append(segs, Segment{Seq: seq, Path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].Seq < segs[k].Seq })
	return segs, nil
}

// segmentSeq parses a segment file name.
func segmentSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	seq, err := strconv.Atoi(num)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}

func segmentName(seq int) string {
	return fmt.Sprintf("%s%0*d%s", segmentPrefix, segmentDigits, seq, segmentSuffix)
}

// recoverTail truncates path to its last complete line. It reports whether a
// torn tail was dropped. An empty or already-clean file is left untouched.
func recoverTail(path string) (bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("events: reading journal tail: %w", err)
	}
	if len(b) == 0 || b[len(b)-1] == '\n' {
		return false, nil
	}
	keep := int64(bytes.LastIndexByte(b, '\n') + 1)
	if err := os.Truncate(path, keep); err != nil {
		return false, fmt.Errorf("events: truncating torn journal tail: %w", err)
	}
	return true, nil
}

// openSegmentLocked opens the current sequence's file for appending.
func (j *Journal) openSegmentLocked() error {
	path := filepath.Join(j.dir, segmentName(j.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("events: opening journal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("events: stat journal segment: %w", err)
	}
	j.f = f
	j.size = st.Size()
	mJournalBytes.Set(j.size)
	return nil
}

// Append writes one encoded event line. The line must not contain a newline;
// Append adds the terminator. Rotation happens after the write, so a single
// oversized event still lands intact.
func (j *Journal) Append(line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("events: journal closed")
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	n, err := j.f.Write(buf)
	j.size += int64(n)
	mJournalBytes.Set(j.size)
	if err != nil {
		// A partial write leaves a torn tail; the next reopen drops it.
		return fmt.Errorf("events: appending journal line: %w", err)
	}
	if j.opts.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("events: fsync journal: %w", err)
		}
	}
	if j.size >= j.opts.RotateBytes {
		return j.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one, pruning
// segments beyond KeepFiles. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	if j.opts.Fsync != FsyncNever {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("events: fsync sealed segment: %w", err)
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("events: closing sealed segment: %w", err)
	}
	j.f = nil
	j.seq++
	mRotations.Inc()
	if err := j.openSegmentLocked(); err != nil {
		return err
	}
	return j.pruneLocked()
}

// pruneLocked removes the oldest segments beyond KeepFiles (the active one
// included in the count). Callers hold j.mu.
func (j *Journal) pruneLocked() error {
	segs, err := ListSegments(j.dir)
	if err != nil {
		return err
	}
	for len(segs) > j.opts.KeepFiles {
		if rerr := os.Remove(segs[0].Path); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
			return fmt.Errorf("events: pruning journal segment: %w", rerr)
		}
		segs = segs[1:]
	}
	return nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close seals the active segment. For any policy but FsyncNever the segment
// is flushed to stable storage first.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if j.opts.Fsync != FsyncNever {
		if err := j.f.Sync(); err != nil {
			_ = j.f.Close()
			j.f = nil
			return fmt.Errorf("events: fsync on close: %w", err)
		}
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("events: closing journal: %w", err)
	}
	return nil
}
