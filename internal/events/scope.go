package events

import (
	"context"
	"sync/atomic"
)

// Scope accumulates per-request resource counters along a request's context:
// proof-cache hits and misses (poc), pooled-connection reuse and retries
// (node). The process-wide obs counters answer "how much overall"; a scope
// answers "how much did THIS query cost", which is what lands on its wide
// event. All methods are nil-safe, so instrumented hot paths pay one branch
// when no event is being assembled, and atomic, because speculative child
// probes touch the scope concurrently.
type Scope struct {
	cacheHits, cacheMisses, poolReused, poolRetries atomic.Uint64
}

// NewScope returns an empty scope.
func NewScope() *Scope { return &Scope{} }

// scopeKey is the context key the active scope lives under.
type scopeKey struct{}

// WithScope returns a context carrying the scope. The innermost scope wins:
// a proxy assembling a query event under a node server assembling a request
// event attributes the shared-resource counters to the query.
func WithScope(ctx context.Context, s *Scope) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, s)
}

// ScopeFrom returns the context's active scope, or nil.
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// CacheHit counts one proof served from the proof cache.
func (s *Scope) CacheHit() {
	if s != nil {
		s.cacheHits.Add(1)
	}
}

// CacheMiss counts one proof computed by a cache leader.
func (s *Scope) CacheMiss() {
	if s != nil {
		s.cacheMisses.Add(1)
	}
}

// PoolReuse counts one exchange served over a reused pooled connection.
func (s *Scope) PoolReuse() {
	if s != nil {
		s.poolReused.Add(1)
	}
}

// PoolRetry counts one transport retry.
func (s *Scope) PoolRetry() {
	if s != nil {
		s.poolRetries.Add(1)
	}
}

// Fill copies the accumulated counters onto an event.
func (s *Scope) Fill(ev *Event) {
	if s == nil || ev == nil {
		return
	}
	ev.CacheHits = s.cacheHits.Load()
	ev.CacheMisses = s.cacheMisses.Load()
	ev.PoolReused = s.poolReused.Load()
	ev.PoolRetries = s.poolRetries.Load()
}
