// Package eventfield hardens the wide-event vocabulary.
//
// System invariant: internal/events journals are a long-lived, greppable
// evidence trail — desword-events aggregates them, CI diffs them, and
// operators query them by field name. Event.SetField writes its name
// verbatim into every journal line, so a dynamic name is an open-ended
// vocabulary: the offline tooling can never enumerate it, a typo'd name
// silently forks the schema, and per-request names bloat journals without
// bound (the cardinality concern of metriclabel, transplanted to disk).
// The analyzer therefore requires every (*events.Event).SetField name to
// be a compile-time constant matching ^[a-z_]+$, mirroring the metric-name
// discipline of desword/metriclabel.
package eventfield

import (
	"go/ast"
	"regexp"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var nameRe = regexp.MustCompile(`^[a-z_]+$`)

var Analyzer = &analysis.Analyzer{
	Name: "eventfield",
	Doc:  "wide-event field names passed to events.Event.SetField must be compile-time constants matching ^[a-z_]+$",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "SetField" {
		return
	}
	recv := lintutil.ReceiverExpr(call)
	if recv == nil || !lintutil.IsPkgPathSuffixNamed(pass.TypesInfo.TypeOf(recv), "internal/events", "Event") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	name, constant := lintutil.ConstString(pass.TypesInfo, call.Args[0])
	switch {
	case !constant:
		pass.Reportf(call.Args[0].Pos(),
			"wide-event field name must be a compile-time constant; a dynamic name is an open-ended journal vocabulary offline tooling cannot enumerate")
	case !nameRe.MatchString(name):
		pass.Reportf(call.Args[0].Pos(), "wide-event field name %q must match %s", name, nameRe)
	}
}
