// Package events is a minimal model of the real internal/events Event so
// the eventfield fixtures type-check; the analyzer matches it by the
// internal/events path suffix and the Event type name.
package events

type Event struct {
	Fields map[string]any
}

func (e *Event) SetField(name string, value any) {
	if e.Fields == nil {
		e.Fields = make(map[string]any)
	}
	e.Fields[name] = value
}
