// Package sim exercises eventfield against the events fixture: field names
// must be compile-time constants matching ^[a-z_]+$; values may be anything.
package sim

import "internal/events"

const pBad = "p_bad"

func good(ev *events.Event, trials int) {
	ev.SetField(pBad, 0.05)
	ev.SetField("trials", trials)
	ev.SetField("break_even_p_bad", 0.0526)
}

func dynamicName(ev *events.Event, strategy string) {
	ev.SetField(strategy+"_mean", 1.0) // want "wide-event field name must be a compile-time constant"
}

func badName(ev *events.Event) {
	ev.SetField("p50Latency", 12) // want "wide-event field name \"p50Latency\" must match"
}

func digitName(ev *events.Event) {
	ev.SetField("p_95", 3.2) // want "wide-event field name \"p_95\" must match"
}

func suppressed(ev *events.Event, which string) {
	//lint:ignore desword/eventfield fixture: the name set is closed at this call site
	ev.SetField(which, true)
}

// fake has the same method shape but is not the events Event; calls on it
// are out of scope.
type fake struct{}

func (fake) SetField(name string, value any) {}

func notTheEvent(f fake, n string) { f.SetField(n, "dynamic but fine") }
