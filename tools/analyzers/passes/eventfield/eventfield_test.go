package eventfield_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/eventfield"
)

func TestEventField(t *testing.T) {
	analysistest.Run(t, "testdata", eventfield.Analyzer, "internal/sim")
}
