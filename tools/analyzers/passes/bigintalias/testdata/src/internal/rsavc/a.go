// Package rsavc is a golden fixture for bigintalias: parameter mutation
// and documented-unsafe aliasing are diagnosed; in-place arithmetic on
// locally owned values is not.
package rsavc

import "math/big"

var one = big.NewInt(1)

func mutatesParam(x *big.Int) *big.Int {
	x.Add(x, one) // want "Add mutates \\*big.Int parameter x"
	return x
}

func mutatesParamInClosure(x *big.Int) func() {
	return func() {
		x.SetInt64(7) // want "SetInt64 mutates \\*big.Int parameter x"
	}
}

func aliasDivMod(a, b *big.Int) *big.Int {
	q := new(big.Int)
	r := new(big.Int)
	q.DivMod(a, b, q) // want "DivMod receiver q aliases result argument 2"
	return r
}

func aliasGCD(a, b *big.Int) *big.Int {
	g := new(big.Int)
	g.GCD(g, nil, a, b) // want "GCD receiver g aliases result argument 0"
	return g
}

func okLocalInPlace(a *big.Int) *big.Int {
	x := new(big.Int).Set(a)
	x.Mod(x, one) // in-place on an owned local is documented alias-safe
	return x
}

func okFreshDestination(a, b *big.Int) *big.Int {
	return new(big.Int).Add(a, b)
}

func okDistinctDivMod(a, b *big.Int) (*big.Int, *big.Int) {
	q, r := new(big.Int), new(big.Int)
	q.DivMod(a, b, r)
	return q, r
}

func suppressedMutation(x *big.Int) {
	//lint:ignore desword/bigintalias fixture asserts the caller hands over ownership
	x.SetInt64(7)
}
