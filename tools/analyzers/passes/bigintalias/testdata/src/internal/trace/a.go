// Package trace is off the enforced path: parameter mutation here is not
// the analyzer's business.
package trace

import "math/big"

func mutate(x *big.Int) { x.SetInt64(1) }
