// Package bigintalias guards the big.Int ownership discipline of the
// cryptographic packages.
//
// Paper invariant: commitments, witnesses and CRS parameters hand *big.Int
// values across package boundaries (group scalars, RSA accumulator bases,
// q-mercurial messages). A callee that mutates a *big.Int it received as a
// parameter corrupts its caller's commitment state — the classic source of
// "verifies locally, fails remotely" bugs. math/big documents most z.Op(x,
// y) forms as alias-safe, so plain in-place arithmetic on locally owned
// values is fine; what the analyzer flags is
//
//  1. calling a destination-mutating big.Int method on a *big.Int function
//     parameter (the callee does not own it), and
//  2. receiver/argument aliasing on the few methods whose documentation
//     requires distinct operands (DivMod, QuoRem, GCD): x.DivMod(a, b, x)
//     silently overwrites the quotient with the remainder.
package bigintalias

import (
	"go/ast"
	"go/types"
	"regexp"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var enforced = regexp.MustCompile(`(^|/)internal/(zkedb|qmercurial|mercurial|chlmr|rsavc|group|poc)(/|$)`)

// mutators are the big.Int methods that write their receiver.
var mutators = map[string]bool{
	"Abs": true, "Add": true, "And": true, "AndNot": true, "Div": true,
	"DivMod": true, "Exp": true, "GCD": true, "Lsh": true, "Mod": true,
	"ModInverse": true, "ModSqrt": true, "Mul": true, "MulRange": true,
	"Neg": true, "Not": true, "Or": true, "Quo": true, "QuoRem": true,
	"Rand": true, "Rem": true, "Rsh": true, "Set": true, "SetBit": true,
	"SetBits": true, "SetBytes": true, "SetInt64": true, "SetString": true,
	"SetUint64": true, "Sqrt": true, "Sub": true, "Xor": true,
	"UnmarshalJSON": true, "UnmarshalText": true, "GobDecode": true, "Scan": true,
}

// unsafeAlias maps the methods whose receiver must not alias particular
// arguments to the indices of those arguments.
var unsafeAlias = map[string][]int{
	"DivMod": {2}, // z.DivMod(x, y, m): z and m are distinct results
	"QuoRem": {2}, // z.QuoRem(x, y, r): z and r are distinct results
	"GCD":    {0, 1},
}

var Analyzer = &analysis.Analyzer{
	Name: "bigintalias",
	Doc:  "flag mutation of *big.Int parameters and receiver aliasing on DivMod/QuoRem/GCD in the crypto packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !enforced.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			params := bigIntParams(pass.TypesInfo, fn)
			checkBody(pass, fn.Body, params)
			return true
		})
	}
	return nil
}

// bigIntParams collects the *big.Int parameter objects of fn. Named
// results are excluded: the function owns those.
func bigIntParams(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if fn.Type.Params == nil {
		return params
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && lintutil.IsNamed(obj.Type(), "math/big", "Int") {
				if _, isPtr := obj.Type().(*types.Pointer); isPtr {
					params[obj] = true
				}
			}
		}
	}
	return params
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, params map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals keep the outer parameter set: a closure
		// mutating the enclosing function's parameter is just as wrong.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/big" {
			return true
		}
		recv := lintutil.ReceiverExpr(call)
		if recv == nil || !lintutil.IsNamed(pass.TypesInfo.TypeOf(recv), "math/big", "Int") {
			return true
		}
		name := fn.Name()
		if mutators[name] {
			if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && params[obj] {
					pass.Reportf(call.Pos(),
						"%s mutates *big.Int parameter %s; the callee does not own it — write into a new(big.Int) instead",
						name, id.Name)
				}
			}
		}
		if idxs, ok := unsafeAlias[name]; ok {
			recvStr := types.ExprString(ast.Unparen(recv))
			for _, i := range idxs {
				if i < len(call.Args) && types.ExprString(ast.Unparen(call.Args[i])) == recvStr {
					pass.Reportf(call.Pos(),
						"%s receiver %s aliases result argument %d; math/big requires distinct values here",
						name, recvStr, i)
				}
			}
		}
		return true
	})
}
