package bigintalias_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/bigintalias"
)

func TestBigIntAlias(t *testing.T) {
	analysistest.Run(t, "testdata", bigintalias.Analyzer, "internal/rsavc", "internal/trace")
}
