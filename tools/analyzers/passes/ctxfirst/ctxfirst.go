// Package ctxfirst enforces end-to-end context threading in the query
// path.
//
// Paper invariant: a product path query fans out across proxy and
// participant processes; deadlines, cancellation and the distributed trace
// (DESIGN §7–8) ride on context.Context. A function that accepts a context
// anywhere but first hides it from callers, and a context.Background()
// minted mid-path silently detaches a subtree from the caller's deadline
// and trace — the exact failure mode PRs 2–3 were built to prevent. The
// analyzer enforces, in internal/core, internal/node and internal/poc —
// the proving layer joined the scope when Prove/Verify became ctx-first:
// (1) any function taking a context.Context takes it as the first
// parameter; (2) no context.Background()/TODO() outside main packages and
// _test.go files — the root context is created by the binary, not the
// library.
package ctxfirst

import (
	"go/ast"
	"regexp"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var enforced = regexp.MustCompile(`(^|/)internal/(core|node|poc)(/|$)`)

var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter and must not be minted via context.Background() in library code on the query path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !enforced.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Name.Name, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, "func literal", n.Type)
			case *ast.CallExpr:
				checkBackground(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSignature(pass *analysis.Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for fieldIdx, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if lintutil.IsContextType(t) && !(fieldIdx == 0 && pos == 0) {
			pass.Reportf(field.Pos(),
				"%s takes context.Context as parameter %d; it must be the first parameter", name, pos)
		}
		pos += n
	}
}

func checkBackground(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.Pkg.Name() == "main" || pass.InTestFile(call.Pos()) {
		return
	}
	fn := lintutil.Callee(pass.TypesInfo, call)
	if lintutil.IsFunc(fn, "context", "Background") || lintutil.IsFunc(fn, "context", "TODO") {
		pass.Reportf(call.Pos(),
			"context.%s() in library code detaches this call tree from the caller's deadline and trace; thread the caller's ctx instead",
			fn.Name())
	}
}
