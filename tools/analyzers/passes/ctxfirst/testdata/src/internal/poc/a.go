// Package poc is a golden fixture for ctxfirst: the proving layer is on the
// enforced query path, so misplaced contexts and library-minted roots are
// diagnosed here exactly as in core and node.
package poc

import "context"

func prove(ctx context.Context, id string) error {
	_ = ctx
	_ = id
	return nil
}

func verify(id string, ctx context.Context) { // want "verify takes context.Context as parameter 1; it must be the first parameter"
	_ = id
	_ = ctx
}

func detached() context.Context {
	return context.Background() // want "context.Background\\(\\) in library code"
}
