// Package apps is off the enforced path: application-layer code may mint
// its own contexts and order parameters as it likes.
package apps

import "context"

func localRoot(n int, ctx context.Context) context.Context {
	_ = n
	_ = ctx
	return context.Background()
}
