package core

// Tests construct ad-hoc root contexts all the time; the Background ban
// exempts _test.go files.

import "context"

func testRoot() context.Context { return context.Background() }
