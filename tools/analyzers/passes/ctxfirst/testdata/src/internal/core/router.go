// router.go mirrors the shard-router / admission-gate shapes introduced by
// the proxy tier (internal/core/router.go, admission.go): gate acquisition,
// coalesced query closures and shard-local walks all sit on the query path,
// so every one of them must thread the caller's context first and never mint
// a root of its own.
package core

import "context"

type gate struct{}

// Acquire is the admission-gate shape: ctx-first, caller's deadline decides
// whether the waiter sheds.
func (g *gate) Acquire(ctx context.Context) (func(), error) {
	_ = ctx
	return func() {}, nil
}

// acquireMisplaced hides the context from callers behind the component name.
func (g *gate) acquireMisplaced(component string, ctx context.Context) error { // want "acquireMisplaced takes context.Context as parameter 1; it must be the first parameter"
	_ = component
	_ = ctx
	return nil
}

type shard struct{}

// queryCoalesced is the single-flight shape: the leader's walk closure takes
// the context it was parked under, first.
func (s *shard) queryCoalesced(ctx context.Context, key string, walk func(context.Context) error) error {
	return walk(ctx)
}

// shardKeyed puts the routing key ahead of the context — callers lose the
// at-a-glance guarantee that cancellation reaches the walk.
func (s *shard) shardKeyed(key string, ctx context.Context) error { // want "shardKeyed takes context.Context as parameter 1; it must be the first parameter"
	_ = key
	_ = ctx
	return nil
}

// detachedWalk is the admission bug ctxfirst exists to catch: a follower
// retrying as leader must inherit the caller's deadline, not restart from a
// fresh root that outlives every client.
func (s *shard) detachedWalk(walk func(context.Context) error) error {
	return walk(context.Background()) // want "context.Background\\(\\) in library code"
}

// coalesceLit pins the func-literal case: the walk closures handed to the
// single-flight layer are checked like named functions.
var coalesceLit = func(key string, ctx context.Context) error { // want "func literal takes context.Context as parameter 1"
	_ = key
	_ = ctx
	return nil
}
