// Package core is a golden fixture for ctxfirst: misplaced contexts and
// library-minted roots are diagnosed on the enforced query path.
package core

import "context"

func ok(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func misplaced(n int, ctx context.Context) { // want "misplaced takes context.Context as parameter 1; it must be the first parameter"
	_ = n
	_ = ctx
}

var handler = func(n int, ctx context.Context) { // want "func literal takes context.Context as parameter 1"
	_ = n
	_ = ctx
}

func mintsRoot() context.Context {
	return context.Background() // want "context.Background\\(\\) in library code"
}

func mintsTODO() context.Context {
	return context.TODO() // want "context.TODO\\(\\) in library code"
}

func suppressedRoot() context.Context {
	//lint:ignore desword/ctxfirst fixture: this is the process root builder
	return context.Background()
}
