package ctxfirst_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, "testdata", ctxfirst.Analyzer, "internal/core", "internal/poc", "internal/apps")
}
