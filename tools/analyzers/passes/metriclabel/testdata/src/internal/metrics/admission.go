// admission.go exercises metriclabel against the proxy-tier metric shapes
// (internal/core/admission.go, router.go): per-component admission counters
// and per-shard walk counters. The discipline under test: names and label
// KEYS are compile-time constants; label VALUES (component, shard index) may
// be dynamic — they are escaped at exposition and bounded by the deployment.
package metrics

import (
	"internal/obs"
	"strconv"
)

// goodAdmission is the real gate's pattern: constant names and keys, the
// component and shed reason as dynamic values.
func goodAdmission(r *obs.Registry, component string) {
	r.Counter("desword_admission_admitted_total", "requests admitted", "component", component)
	r.Counter("desword_admission_shed_total", "requests shed", "component", component, "reason", "queue_full")
	r.Gauge("desword_admission_queue_depth", "waiters queued", "component", component)
	r.Histogram("desword_admission_wait_seconds", "time spent queued", []float64{0.001, 0.01, 0.1}, "component", component)
}

// goodShard is the router's pattern: the shard index is a dynamic label
// VALUE, which is fine — cardinality is bounded by -shards.
func goodShard(r *obs.Registry, id int) {
	r.Counter("desword_shard_queries_total", "walks led by this shard", "shard", strconv.Itoa(id))
}

// nameFromComponent bakes the dynamic component into the family name instead
// of a label — one series family per component string, unbounded.
func nameFromComponent(r *obs.Registry, component string) {
	r.Counter("desword_admission_"+component+"_total", "per-component family") // want "metric name must be a compile-time constant"
}

// shedReasonAsKey inverts the reason label: the dynamic reason becomes the
// key and would be emitted unescaped in the exposition.
func shedReasonAsKey(r *obs.Registry, reason string) {
	r.Counter("desword_admission_shed_total", "requests shed", reason, "1") // want "metric label key must be a compile-time constant"
}

// shardKeyCase gets the key grammar wrong: keys share the ^[a-z_]+$ name
// grammar, so a capitalised key is rejected at vet time.
func shardKeyCase(r *obs.Registry, id int) {
	r.Counter("desword_shard_coalesced_total", "joins", "Shard", strconv.Itoa(id)) // want "metric label key \"Shard\" must match"
}

// shardValueOnly forgets the value half of the shard pair; the registry
// would panic at runtime, the analyzer catches it at vet time.
func shardValueOnly(r *obs.Registry) {
	r.Counter("desword_shard_queries_total", "walks", "shard") // want "odd label list \\(1 values\\)"
}
