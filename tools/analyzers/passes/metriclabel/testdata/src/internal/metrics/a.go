// Package metrics exercises metriclabel against the obs fixture: names and
// label keys must be compile-time constants matching ^[a-z_]+$; label
// values may be dynamic.
package metrics

import "internal/obs"

const queries = "desword_queries_total"

func good(r *obs.Registry, role string) {
	r.Counter(queries, "total queries", "role", role)
	r.Gauge("desword_pool_idle", "idle connections")
	r.Histogram("desword_verify_seconds", "verify latency", []float64{0.01, 0.1}, "kind", role)
	obs.Default.Counter("desword_default_total", "via the default registry", "role", role)
}

func dynamicName(r *obs.Registry, which string) {
	r.Counter("desword_"+which, "dynamic", "role", "proxy") // want "metric name must be a compile-time constant"
}

func badName(r *obs.Registry) {
	r.Counter("Desword-Queries", "bad name") // want "metric name \"Desword-Queries\" must match"
}

func spreadLabels(r *obs.Registry, labels []string) {
	r.Counter("desword_spread_total", "spread", labels...) // want "labels passed as a spread slice"
}

func oddLabels(r *obs.Registry) {
	r.Counter("desword_odd_total", "odd", "role") // want "odd label list \\(1 values\\)"
}

func dynamicKey(r *obs.Registry, k string) {
	r.Counter("desword_dyn_total", "dyn", k, "proxy") // want "metric label key must be a compile-time constant"
}

func badKey(r *obs.Registry) {
	r.Counter("desword_badkey_total", "bad", "Role", "proxy") // want "metric label key \"Role\" must match"
}

func suppressed(r *obs.Registry, which string) {
	//lint:ignore desword/metriclabel fixture: the name set is closed at this call site
	r.Counter("desword_"+which, "suppressed")
}

// fake has the same method shape but is not the obs Registry; calls on it
// are out of scope.
type fake struct{}

func (fake) Counter(name, help string, labels ...string) {}

func notTheRegistry(f fake, n string) { f.Counter(n, "dynamic but fine") }
