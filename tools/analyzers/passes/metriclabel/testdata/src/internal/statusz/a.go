// Package statusz exercises metriclabel's telemetry.RegisterKeyFamily
// check: every name on the statusz display list must be a compile-time
// constant matching ^[a-z_]+$.
package statusz

import "internal/telemetry"

const latency = "desword_query_latency_seconds"

func good() {
	telemetry.RegisterKeyFamily(latency)
	telemetry.RegisterKeyFamily("desword_queries_total", "desword_go_goroutines")
}

func dynamicName(which string) {
	telemetry.RegisterKeyFamily("desword_" + which) // want "key family name must be a compile-time constant"
}

func badName() {
	telemetry.RegisterKeyFamily("Desword-Queries") // want "key family name \"Desword-Queries\" must match"
}

func spreadNames(names []string) {
	telemetry.RegisterKeyFamily(names...) // want "key families passed as a spread slice"
}

func suppressed(which string) {
	//lint:ignore desword/metriclabel fixture: the name set is closed at this call site
	telemetry.RegisterKeyFamily("desword_" + which)
}

// fake has the same function name in another package; out of scope.
func RegisterKeyFamily(names ...string) {}

func notTheTelemetryPackage(n string) { RegisterKeyFamily(n) }
