// Package obs is a minimal model of the real internal/obs registry so the
// metriclabel fixtures type-check; the analyzer matches it by the
// internal/obs path suffix and the Registry type name.
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return &Histogram{}
}

var Default = &Registry{}
