// Package telemetry is a minimal model of the real internal/telemetry
// key-family registry so the metriclabel fixtures type-check; the analyzer
// matches RegisterKeyFamily by the internal/telemetry path suffix.
package telemetry

func RegisterKeyFamily(names ...string) {}
