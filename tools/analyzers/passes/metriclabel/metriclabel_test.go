package metriclabel_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/metriclabel"
)

func TestMetricLabel(t *testing.T) {
	analysistest.Run(t, "testdata", metriclabel.Analyzer, "internal/metrics", "internal/statusz")
}
