// Package metriclabel hardens the metrics exposition surface.
//
// System invariant: internal/obs renders Prometheus text exposition;
// family names and label keys are emitted verbatim (only label values are
// escaped). A dynamic name or label key is therefore both an exposition
// injection vector and a cardinality bomb — one name per request would
// grow the registry without bound, since series live for the process
// lifetime. The analyzer requires, at every Registry.Counter/Gauge/
// Histogram call site: a compile-time constant metric name matching
// ^[a-z_]+$, compile-time constant label keys matching the same pattern,
// and a complete set of key/value pairs (the registry panics on odd label
// lists at runtime; this catches it at vet time). Label values may be
// dynamic — they are escaped at exposition and bounded by the caller.
package metriclabel

import (
	"go/ast"
	"regexp"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var nameRe = regexp.MustCompile(`^[a-z_]+$`)

// registryMethods maps method name → index of the first label argument.
var registryMethods = map[string]int{
	"Counter":   2, // (name, help, labels...)
	"Gauge":     2,
	"Histogram": 3, // (name, help, buckets, labels...)
}

var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc:  "obs metric names and label keys must be compile-time constants matching ^[a-z_]+$",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	labelStart, ok := registryMethods[fn.Name()]
	if !ok {
		return
	}
	recv := lintutil.ReceiverExpr(call)
	if recv == nil || !lintutil.IsPkgPathSuffixNamed(pass.TypesInfo.TypeOf(recv), "internal/obs", "Registry") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	name, constant := lintutil.ConstString(pass.TypesInfo, call.Args[0])
	switch {
	case !constant:
		pass.Reportf(call.Args[0].Pos(),
			"metric name must be a compile-time constant; a dynamic name is an exposition injection vector and unbounded cardinality")
	case !nameRe.MatchString(name):
		pass.Reportf(call.Args[0].Pos(), "metric name %q must match %s", name, nameRe)
	}
	if labelStart >= len(call.Args) {
		return
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Args[len(call.Args)-1].Pos(),
			"labels passed as a spread slice cannot be statically verified; spell the key/value pairs out")
		return
	}
	labels := call.Args[labelStart:]
	if len(labels)%2 != 0 {
		pass.Reportf(labels[len(labels)-1].Pos(),
			"odd label list (%d values); labels are alternating key, value pairs and the registry panics otherwise", len(labels))
	}
	for i := 0; i < len(labels); i += 2 {
		key, constant := lintutil.ConstString(pass.TypesInfo, labels[i])
		switch {
		case !constant:
			pass.Reportf(labels[i].Pos(),
				"metric label key must be a compile-time constant; dynamic keys are emitted unescaped in the exposition")
		case !nameRe.MatchString(key):
			pass.Reportf(labels[i].Pos(), "metric label key %q must match %s", key, nameRe)
		}
	}
}
