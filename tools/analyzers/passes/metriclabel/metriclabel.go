// Package metriclabel hardens the metrics exposition surface.
//
// System invariant: internal/obs renders Prometheus text exposition;
// family names and label keys are emitted verbatim (only label values are
// escaped). A dynamic name or label key is therefore both an exposition
// injection vector and a cardinality bomb — one name per request would
// grow the registry without bound, since series live for the process
// lifetime. The analyzer requires, at every Registry.Counter/Gauge/
// Histogram call site: a compile-time constant metric name matching
// ^[a-z_]+$, compile-time constant label keys matching the same pattern,
// and a complete set of key/value pairs (the registry panics on odd label
// lists at runtime; this catches it at vet time). Label values may be
// dynamic — they are escaped at exposition and bounded by the caller.
//
// The same discipline extends to internal/telemetry's key-family display
// list: telemetry.RegisterKeyFamily appends family names to the fleet
// statusz view for the life of the process, so every argument must be a
// compile-time constant matching ^[a-z_]+$ — a dynamic registration is an
// unbounded display list and can never match a registered family anyway.
package metriclabel

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var nameRe = regexp.MustCompile(`^[a-z_]+$`)

// registryMethods maps method name → index of the first label argument.
var registryMethods = map[string]int{
	"Counter":   2, // (name, help, labels...)
	"Gauge":     2,
	"Histogram": 3, // (name, help, buckets, labels...)
}

var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc:  "obs metric names and label keys must be compile-time constants matching ^[a-z_]+$",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if fn.Name() == "RegisterKeyFamily" && isPkgPathSuffix(fn.Pkg(), "internal/telemetry") {
		checkRegisterKeyFamily(pass, call)
		return
	}
	labelStart, ok := registryMethods[fn.Name()]
	if !ok {
		return
	}
	recv := lintutil.ReceiverExpr(call)
	if recv == nil || !lintutil.IsPkgPathSuffixNamed(pass.TypesInfo.TypeOf(recv), "internal/obs", "Registry") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	name, constant := lintutil.ConstString(pass.TypesInfo, call.Args[0])
	switch {
	case !constant:
		pass.Reportf(call.Args[0].Pos(),
			"metric name must be a compile-time constant; a dynamic name is an exposition injection vector and unbounded cardinality")
	case !nameRe.MatchString(name):
		pass.Reportf(call.Args[0].Pos(), "metric name %q must match %s", name, nameRe)
	}
	if labelStart >= len(call.Args) {
		return
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Args[len(call.Args)-1].Pos(),
			"labels passed as a spread slice cannot be statically verified; spell the key/value pairs out")
		return
	}
	labels := call.Args[labelStart:]
	if len(labels)%2 != 0 {
		pass.Reportf(labels[len(labels)-1].Pos(),
			"odd label list (%d values); labels are alternating key, value pairs and the registry panics otherwise", len(labels))
	}
	for i := 0; i < len(labels); i += 2 {
		key, constant := lintutil.ConstString(pass.TypesInfo, labels[i])
		switch {
		case !constant:
			pass.Reportf(labels[i].Pos(),
				"metric label key must be a compile-time constant; dynamic keys are emitted unescaped in the exposition")
		case !nameRe.MatchString(key):
			pass.Reportf(labels[i].Pos(), "metric label key %q must match %s", key, nameRe)
		}
	}
}

// checkRegisterKeyFamily requires every telemetry.RegisterKeyFamily argument
// to be a compile-time constant family name: the display list is append-only
// and lives for the process, so dynamic names are unbounded growth, and a
// name that can't pass the registry's own grammar can never match a family.
func checkRegisterKeyFamily(pass *analysis.Pass, call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Args[len(call.Args)-1].Pos(),
			"key families passed as a spread slice cannot be statically verified; spell the names out")
		return
	}
	for _, arg := range call.Args {
		name, constant := lintutil.ConstString(pass.TypesInfo, arg)
		switch {
		case !constant:
			pass.Reportf(arg.Pos(),
				"key family name must be a compile-time constant; the statusz display list is append-only for the process lifetime")
		case !nameRe.MatchString(name):
			pass.Reportf(arg.Pos(), "key family name %q must match %s", name, nameRe)
		}
	}
}

// isPkgPathSuffix matches a defining package by path suffix, so the analyzer
// recognizes both the real package ("desword/internal/telemetry") and an
// analysistest fixture ("internal/telemetry").
func isPkgPathSuffix(pkg *types.Package, pathSuffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}
