// Package goroutinelife requires every goroutine started in the
// concurrency-heavy packages to be joinable or cancellable.
//
// Paper invariant: a proxy or participant that leaks goroutines under
// sustained query load eventually exhausts the process — and a goroutine
// nobody can stop keeps mutating shared proof state after shutdown has
// begun, which is exactly the window where the flight recorder and the
// telemetry ring get corrupted. In internal/{node,telemetry,events,
// zkedb,poc} a `go` statement must therefore carry a lifecycle signal
// the launcher (or a test) can wait on or trigger:
//
//   - joinable: the body calls (*sync.WaitGroup).Done, or sends on /
//     closes a channel — someone can observe completion;
//   - cancellable: the body receives from a channel (a stop/done
//     channel, a ticker, ctx.Done()) or consults ctx.Err(), or ranges
//     over a channel — someone can make it return.
//
// A `go` of a named function or method is resolved within the package
// and its body scanned the same way; calls that pass a context, a
// *sync.WaitGroup, or a channel to a callee outside the package are
// assumed managed by the callee. Fire-and-forget `go` statements with
// none of these are findings. _test.go files are exempt: the test
// binary's lifetime bounds their goroutines.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "goroutines in the concurrency-heavy packages must be joinable or cancellable",
	Run:  run,
}

// enforced matches the packages under contract (suffix-matched so the
// analysistest fixtures model them as internal/...).
var enforced = regexp.MustCompile(`(^|/)internal/(node|telemetry|events|zkedb|poc)(/|$)`)

func run(pass *analysis.Pass) error {
	if !enforced.MatchString(pass.Pkg.Path()) {
		return nil
	}
	// Index the package's own function bodies so `go c.loop()` can be
	// judged by what loop actually does.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(g.Pos()) {
				return true
			}
			if !managed(pass.TypesInfo, decls, g.Call) {
				pass.Reportf(g.Pos(), "goroutine is neither joinable nor cancellable: no WaitGroup.Done, channel send/close/receive, or context check in its body")
			}
			return true
		})
	}
	return nil
}

// managed reports whether the goroutine launched by call carries a
// lifecycle signal.
func managed(info *types.Info, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodySignals(info, lit.Body)
	}
	// Named function or method: a lifecycle handle among the arguments
	// (or the receiver chain) means the callee manages itself with it.
	for _, arg := range call.Args {
		if isLifecycleType(info.Types[arg].Type) {
			return true
		}
	}
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return false
	}
	if fd, ok := decls[fn]; ok {
		return bodySignals(info, fd.Body)
	}
	return false
}

// bodySignals scans a goroutine body — including its nested literals,
// which run within the goroutine — for a join or cancellation signal.
func bodySignals(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true // completion/result signal someone can receive
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // receives: stop channels, tickers, ctx.Done()
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true // drains until the channel closes
				}
			}
		case *ast.CallExpr:
			if isClose(n) {
				found = true
				return false
			}
			fn := lintutil.Callee(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "sync" && fn.Name() == "Done":
				found = true // wg.Done: joinable
			case fn.Pkg().Path() == "context" && fn.Name() == "Err":
				found = true // polls cancellation
			}
		}
		return !found
	})
	return found
}

func isClose(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "close"
}

// isLifecycleType recognizes the handles whose presence in a call means
// the callee can be joined or cancelled: contexts, waitgroups, channels.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if lintutil.IsContextType(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if lintutil.IsNamed(ptr.Elem(), "sync", "WaitGroup") {
			return true
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
