package goroutinelife_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/goroutinelife"
)

func TestGoroutinelife(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinelife.Analyzer, "internal/node", "internal/sim")
}
