package node

import "testing"

// Test files are exempt: the test binary's lifetime bounds the goroutine.
func TestFireAndForget(t *testing.T) {
	go work()
}
