// Package node is the goroutinelife golden fixture: it sits on an
// enforced path (internal/node), so every `go` statement must carry a
// join or cancellation signal.
package node

import (
	"context"
	"sync"
)

func work() {}

// leak has no lifecycle signal; `go leak()` is the fire-and-forget shape.
func leak() {
	for {
		work()
	}
}

type C struct {
	stop chan struct{}
	out  chan int
}

// loop is cancellable through c.stop; `go c.loop()` resolves to this body.
func (c *C) loop() {
	for {
		select {
		case <-c.stop:
			return
		case c.out <- 1:
		}
	}
}

func runWith(ctx context.Context) {
	for ctx.Err() == nil {
		work()
	}
}

func produce(out chan<- int) {
	for i := 0; i < 3; i++ {
		out <- i
	}
	close(out)
}

// fire-and-forget literals are findings.
func badLit() {
	go func() { // want `goroutine is neither joinable nor cancellable: no WaitGroup\.Done, channel send/close/receive, or context check in its body`
		work()
	}()
}

// so are fire-and-forget named calls whose body has no signal.
func badNamed() {
	go leak() // want `goroutine is neither joinable nor cancellable`
}

// cancellable: the body receives from a stop channel.
func okStop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// joinable: the body signals completion through a WaitGroup.
func okWait(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// joinable: the body sends its result on a channel.
func okSend(done chan error) {
	go func() {
		work()
		done <- nil
	}()
}

// joinable: the body closes a completion channel.
func okClose(done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}

// cancellable: the body ranges over its input until the sender closes it.
func okRange(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// cancellable: the body polls ctx.Err, even via a nested literal.
func okCtx(ctx context.Context) {
	go func() {
		helper := func() bool { return ctx.Err() == nil }
		for helper() {
			work()
		}
	}()
}

// a named call is judged by its resolved body.
func okNamed(c *C) {
	go c.loop()
}

// passing a lifecycle handle means the callee manages itself with it.
func okHandleArgs(ctx context.Context, out chan int) {
	go runWith(ctx)
	go produce(out)
}
