package node

// A reviewed exception: a process-lifetime worker, documented as such.
func daemon() {
	//lint:ignore desword/goroutinelife fixture models a process-lifetime worker
	go leak()
}
