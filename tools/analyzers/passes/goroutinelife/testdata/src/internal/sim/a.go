// Package sim is off the enforced paths (internal/sim is not one of
// internal/{node,telemetry,events,zkedb,poc}), so even a fire-and-forget
// goroutine is not a finding here.
package sim

func work() {}

func fireAndForget() {
	go work()
}
