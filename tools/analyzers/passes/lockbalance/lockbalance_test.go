package lockbalance_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/lockbalance"
)

func TestLockbalance(t *testing.T) {
	analysistest.Run(t, "testdata", lockbalance.Analyzer, "a")
}
