// Package lockbalance checks that every mutex acquired in a function is
// released on every path out of it, and that no path re-locks a mutex it
// already holds.
//
// Paper invariant: the proxy and participant processes must answer every
// query — the soundness argument of §V assumes liveness of the honest
// parties. A single early return that skips an Unlock wedges every later
// request on that mutex, and `make race` cannot prove the absence of such
// a path: the race detector observes executions, not the CFG. This pass
// walks the control-flow graph of each function (tools/analyzers/cfg)
// with a lock-state dataflow (internal/lockflow) and reports:
//
//   - a return path on which an acquired sync.Mutex/RWMutex is still
//     held with no deferred unlock covering it — anchored at the return
//     statement (or the closing brace on fall-off), since that is where
//     the leak escapes;
//   - a path that is only *sometimes* holding the lock when it returns
//     (locked on one branch, released on another) — the classic
//     forgotten-unlock-before-early-return shape;
//   - Lock/RLock on an identity already held exclusively on the same
//     path, and Lock while read-held: both self-deadlock with a
//     non-reentrant sync mutex.
//
// Paths that leave via panic or a terminating call (os.Exit, log.Fatal,
// testing's Fatal family) are exempt: the process or goroutine is dying
// and deferred handlers are the only cleanup that can run anyway.
// Unlocking a mutex this function never locked is deliberately not
// reported — caller-holds-the-lock helpers are a legitimate idiom — and
// each function literal is analyzed as a function of its own, so a
// goroutine body balances its locks independently of its parent.
package lockbalance

import (
	"go/ast"
	"sort"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/cfg"
	"desword/tools/analyzers/internal/lintutil"
	"desword/tools/analyzers/internal/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc:  "mutexes must be released on every exit path and never re-locked on the same path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		lintutil.Functions(f, func(decl ast.Node, body *ast.BlockStmt) {
			checkFunc(pass, body)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g, res := lockflow.Analyze(pass.TypesInfo, body, nil)
	for _, b := range g.Reachable() {
		if !res.Seen[b.Index] {
			continue
		}
		// Re-simulate the block once from its fixpoint input, reporting
		// double-locks as they occur. (Reporting inside the fixpoint
		// transfer would duplicate per iteration.)
		st := res.In[b.Index]
		for _, stmt := range b.Stmts {
			for _, op := range lockflow.Ops(pass.TypesInfo, stmt) {
				var prev lockflow.Lock
				st, prev = lockflow.Apply(st, op)
				if !op.Acquire || op.Defer {
					continue
				}
				switch {
				case prev.Kind == lockflow.Exclusive:
					pass.Reportf(op.Pos, "%s is already locked (Lock at line %d); locking again deadlocks",
						op.ID, pass.Fset.Position(prev.Pos).Line)
				case prev.Kind == lockflow.Read && !op.Read:
					pass.Reportf(op.Pos, "%s.Lock() while read-locked (RLock at line %d); sync.RWMutex is not upgradable",
						op.ID, pass.Fset.Position(prev.Pos).Line)
				}
			}
		}
		// Exit discipline: anything still held on a normal departure
		// (return or fall-off; panic paths exempt) must be covered by a
		// deferred unlock.
		if b.Exit != cfg.ExitReturn && b.Exit != cfg.ExitFall {
			continue
		}
		for _, id := range sortedIDs(st) {
			l := st[id]
			if !l.Kind.Held() || l.Deferred {
				continue
			}
			if l.Kind == lockflow.Maybe {
				pass.Reportf(b.End, "%s may still be held here (%s at line %d is not released on every path to this return)",
					id, l.Kind, pass.Fset.Position(l.Pos).Line)
			} else {
				pass.Reportf(b.End, "%s is still held at function exit (%s at line %d); unlock it or use defer",
					id, l.Kind, pass.Fset.Position(l.Pos).Line)
			}
		}
	}
}

func sortedIDs(st lockflow.State) []string {
	ids := make([]string, 0, len(st))
	for id := range st {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
