package a

import "errors"

// A reviewed exception: the lock is handed to a callback that must
// release it (documented handoff). The directive sits on the return line
// the diagnostic anchors to.
func handoff() error {
	mu.Lock()
	//lint:ignore desword/lockbalance fixture models a documented lock handoff
	return errors.New("callee unlocks")
}
