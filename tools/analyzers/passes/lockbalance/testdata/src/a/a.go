// Package a is the lockbalance golden fixture: leaked locks at returns
// and fall-off, maybe-held merges, double locks, RLock upgrades — and the
// legal shapes (defer, balanced pairs, panic exits, caller-holds helpers)
// that must stay silent.
package a

import (
	"errors"
	"sync"
)

var (
	mu sync.Mutex
	rw sync.RWMutex
)

type pool struct {
	mu   sync.Mutex
	idle []int
}

func work() {}

// balanced lock/unlock pairs are silent.
func balanced() {
	mu.Lock()
	work()
	mu.Unlock()
}

// defer covers every exit path, including early returns.
func deferred(fail bool) error {
	mu.Lock()
	defer mu.Unlock()
	if fail {
		return errors.New("fail")
	}
	return nil
}

// defer inside a function literal is still a deferred unlock.
func deferredLit() {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	work()
}

// leak at an explicit return: the diagnostic anchors at the return.
func leakReturn() error {
	mu.Lock()
	return errors.New("fail") // want `mu is still held at function exit \(Lock at line \d+\); unlock it or use defer`
}

// leak at fall-off: the diagnostic anchors at the closing brace, a line
// no comment can share — this is what the want +N offset is for.
func leakFall() {
	mu.Lock()
	work()
	// want +1 `mu is still held at function exit`
}

// the classic early-return leak: unlocked on the happy path only.
func earlyReturn(fail bool) error {
	mu.Lock()
	if fail {
		return errors.New("fail") // want `mu is still held at function exit`
	}
	mu.Unlock()
	return nil
}

// locked on only one branch: Maybe at the merged exit.
func maybeHeld(cond bool) {
	if cond {
		mu.Lock()
	}
	work()
	// want +1 `mu may still be held here \(Lock \(on some paths\) at line \d+ is not released on every path to this return\)`
}

// re-locking a held mutex self-deadlocks.
func double() {
	mu.Lock()
	mu.Lock() // want `mu is already locked \(Lock at line \d+\); locking again deadlocks`
	mu.Unlock()
}

// sync.RWMutex cannot be upgraded in place.
func upgrade() {
	rw.RLock()
	rw.Lock() // want `rw\.Lock\(\) while read-locked \(RLock at line \d+\); sync\.RWMutex is not upgradable`
	rw.Unlock()
}

// RLock/RUnlock balance like Lock/Unlock.
func readers() int {
	rw.RLock()
	defer rw.RUnlock()
	return 1
}

// identities are per-receiver expression: p.mu leaks independently of mu.
func (p *pool) leakMethod(fail bool) error {
	p.mu.Lock()
	if fail {
		return errors.New("fail") // want `p\.mu is still held at function exit`
	}
	p.mu.Unlock()
	return nil
}

// panic exits are exempt: only deferred handlers run anyway.
func panics() {
	mu.Lock()
	panic("fatal")
}

// unlocking a mutex this function never locked is the caller-holds idiom,
// deliberately unreported.
func (p *pool) takeLocked() int {
	n := p.idle[0]
	p.idle = p.idle[1:]
	p.mu.Unlock()
	return n
}

// a function literal balances its locks as a function of its own: the
// goroutine body below is clean, and its Lock does not leak into spawn.
func spawn() {
	go func() {
		mu.Lock()
		defer mu.Unlock()
		work()
	}()
}

// a leak inside a literal is reported inside the literal.
func spawnLeak() {
	go func() {
		mu.Lock()
		work()
		// want +1 `mu is still held at function exit`
	}()
}

// a loop that locks and unlocks per iteration is clean.
func loop(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		work()
		mu.Unlock()
	}
}
