package zkedb

// Seeded generators are legitimate in property tests; the analyzer exempts
// _test.go files, so this import must produce no diagnostic.

import "math/rand"

func seededForTests() *rand.Rand { return rand.New(rand.NewSource(42)) }
