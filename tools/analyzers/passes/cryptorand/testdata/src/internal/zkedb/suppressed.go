package zkedb

import (
	//lint:ignore desword/cryptorand fixture models a justified, reviewed exception
	mrand "math/rand"
)

func seeded() int { return mrand.New(mrand.NewSource(1)).Int() }
