// Package zkedb is a golden fixture: it sits on an enforced path, so
// math/rand imports must be diagnosed while crypto/rand stays legal.
package zkedb

import (
	crand "crypto/rand"
	"math/rand"       // want "imports math/rand: math/rand is predictable; use crypto/rand"
	v2 "math/rand/v2" // want "imports math/rand/v2: math/rand/v2 is predictable; use crypto/rand"
)

func use() ([]byte, int, uint64) {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	return buf, rand.Int(), v2.Uint64()
}
