// Package sim is off the enforced path: simulation code may use seeded
// math/rand freely, so nothing here is diagnosed.
package sim

import "math/rand"

func roll(r *rand.Rand) int { return r.Intn(6) }
