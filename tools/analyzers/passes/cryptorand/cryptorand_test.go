package cryptorand_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/cryptorand"
)

func TestCryptorand(t *testing.T) {
	analysistest.Run(t, "testdata", cryptorand.Analyzer, "internal/zkedb", "internal/sim")
}
