// Package cryptorand forbids math/rand in the cryptographic packages.
//
// Paper invariant: the hiding property of the mercurial / q-mercurial
// commitments and the zero-knowledge property of the ZK-EDB proofs rest on
// commitment randomness being unpredictable. A math/rand source — seeded
// or not — makes soft-commitment randomness recoverable and lets a
// malicious verifier distinguish teases from hard openings. Only
// crypto/rand may supply randomness in the proof packages; deterministic
// property tests (seeded generators in _test.go files) stay exempt.
package cryptorand

import (
	"regexp"
	"strconv"

	"desword/tools/analyzers/analysis"
)

// enforced matches the packages whose randomness must be crypto/rand.
var enforced = regexp.MustCompile(`(^|/)internal/(zkedb|qmercurial|mercurial|chlmr|rsavc|group|poc)(/|$)`)

var banned = map[string]string{
	"math/rand":    "math/rand is predictable",
	"math/rand/v2": "math/rand/v2 is predictable",
}

var Analyzer = &analysis.Analyzer{
	Name: "cryptorand",
	Doc:  "forbid math/rand in the cryptographic packages; commitment hiding requires crypto/rand",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !enforced.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if pass.InTestFile(imp.Pos()) {
				continue
			}
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := banned[path]; ok {
				pass.Reportf(imp.Pos(), "package %s imports %s: %s; use crypto/rand", pass.Pkg.Path(), path, why)
			}
		}
	}
	return nil
}
