// Package a is a golden fixture for errwrap: %v/%s wrapping of error
// operands and == comparison against sentinels are diagnosed everywhere.
package a

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("closed")

func wrapWithV(err error) error {
	return fmt.Errorf("query failed: %v", err) // want "error err formatted with %v; use %w"
}

func wrapWithS(err error) error {
	return fmt.Errorf("query failed: %s", err) // want "error err formatted with %s; use %w"
}

func wrapOK(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

func doubleWrapOK(err error) error {
	return fmt.Errorf("%w: %w", ErrClosed, err)
}

func mixedPositionsOK(n int, err error) error {
	return fmt.Errorf("hop %d of %s: %w", n, "path", err)
}

func nonErrorOperandOK(n int) error {
	return fmt.Errorf("bad value %d", n)
}

func compareEq(err error) bool {
	return err == ErrClosed // want "comparing error with ErrClosed using ==; use errors.Is"
}

func compareNeq(err error) bool {
	return ErrClosed != err // want "comparing error with ErrClosed using !="
}

func compareIsOK(err error) bool {
	return errors.Is(err, ErrClosed)
}

func nilCheckOK(err error) bool {
	return err == nil
}

func localsOK(err error) bool {
	other := errors.New("other")
	return err == other // neither side is a package-level sentinel
}

func suppressedCompare(err error) bool {
	//lint:ignore desword/errwrap fixture: identity comparison is intentional here
	return err == ErrClosed
}
