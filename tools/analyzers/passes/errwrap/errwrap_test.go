package errwrap_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "a")
}
