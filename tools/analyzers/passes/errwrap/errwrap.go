// Package errwrap enforces the error-chain discipline the retry and
// fast-fail layers depend on.
//
// Paper/system invariant: the pooled transport (DESIGN §8) gates retries
// and endpoint cooldown on errors.Is(err, ErrEndpointDown) and friends; the
// persistence layer tags state corruption with ErrBadState. Both only work
// if every wrapping site uses %w (so the sentinel stays reachable through
// the chain) and every comparison uses errors.Is (so wrapped sentinels
// still match). The analyzer flags (1) fmt.Errorf calls that format an
// error operand with any verb but %w, and (2) ==/!= comparisons between an
// error and a declared sentinel error variable.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf must wrap error operands with %w; sentinel errors must be compared with errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !lintutil.IsFunc(lintutil.Callee(pass.TypesInfo, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := lintutil.ConstString(pass.TypesInfo, call.Args[0])
	if !ok {
		return
	}
	verbs := parseVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		if lintutil.IsErrorType(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"error %s formatted with %%%c; use %%w so the chain stays matchable with errors.Is/As",
				types.ExprString(arg), verb)
		}
	}
}

// parseVerbs returns one rune per argument-consuming verb of a Printf
// format string, with '*' width/precision arguments represented as '*'.
func parseVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// Skip flags, width, precision; '*' consumes an argument of its own.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(runes) {
			verbs = append(verbs, runes[i])
		}
	}
	return verbs
}

func checkSentinelCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xErr := lintutil.IsErrorType(pass.TypesInfo.TypeOf(be.X))
	yErr := lintutil.IsErrorType(pass.TypesInfo.TypeOf(be.Y))
	if !xErr || !yErr {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if sent := sentinelVar(pass.TypesInfo, side); sent != nil {
			pass.Reportf(be.Pos(),
				"comparing error with %s using %s; use errors.Is so wrapped chains still match",
				sent.Name(), be.Op)
			return
		}
	}
}

// sentinelVar resolves expr to a package-level error variable (a sentinel
// like ErrEndpointDown or io.EOF), or nil.
func sentinelVar(info *types.Info, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil {
		return nil
	}
	// Package-level: declared in a package scope, not function-local.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !lintutil.IsErrorType(v.Type()) {
		return nil
	}
	return v
}
