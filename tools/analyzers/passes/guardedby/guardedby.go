// Package guardedby turns "// guarded by mu" field comments into checked
// contracts: every read or write of an annotated struct field must happen
// while the named sibling mutex is held on the accessing path.
//
// Paper invariant: shared proof state — the connection pool's health
// window, the telemetry ring, the journal's active segment — is mutated
// by concurrent queries; the soundness of what the proxy serves assumes
// those structures never tear. The race detector only observes the
// schedules a test happens to produce; this pass proves the discipline
// on the CFG. The contract is written where the field is declared:
//
//	mu   sync.Mutex
//	ring []*Snapshot // guarded by mu
//
// and checked at every use: the lock-state dataflow (internal/lockflow)
// computes which mutexes are held at each statement, and an access to
// x.ring demands that x.mu is held there — exclusively for writes
// (including taking the field's address), at least read-locked for
// reads. A write under RLock alone is a finding of its own.
//
// Recognized escapes, so the annotation sweep stays honest instead of
// suppressed: accesses through a variable the function itself
// constructed (p := &Pool{...}; p.ring = ... — nothing else can see p
// yet); fields of a sync/atomic type and plain fields accessed through
// sync/atomic calls (atomic.AddUint64(&x.n, 1)); methods named *Locked,
// checked as if every mutex field of their receiver were held — the
// caller-holds-the-lock helper convention; and _test.go files, where
// single-threaded inspection is legitimate and `make race` covers the
// rest. Function literals inherit the lock state at their position —
// a sort.Slice comparator running under the enclosing RLock is fine —
// except a literal launched by `go`, which runs concurrently and starts
// with nothing held. A "guarded by" comment naming a sibling that does
// not exist or is not a mutex is itself reported, so contracts cannot
// rot.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
	"desword/tools/analyzers/internal/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by mu` must only be accessed with the named mutex held",
	Run:  run,
}

// guardRe extracts the guard name. Guards are sibling field names, so
// plain identifiers only — prose like "guarded by mu." must not capture
// the sentence period.
var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guard is one field contract.
type guard struct {
	field  *types.Var // the annotated field
	name   string     // sibling mutex field name, e.g. "mu"
	strct  string     // struct type name, for messages
	atomic bool       // field's own type lives in sync/atomic
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, guards, fd.Body, entryState(pass, fd), nil)
		}
	}
	return nil
}

// entryState seeds the locks a caller-holds-the-lock helper assumes: a
// method whose name ends in "Locked" is checked as if every mutex field
// of its receiver were held exclusively — the convention this module uses
// (rotateLocked, cacheInsertLocked) to mark helpers whose callers hold
// the lock, or exclusively own a value that has not escaped yet.
func entryState(pass *analysis.Pass, fd *ast.FuncDecl) lockflow.State {
	if !strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvIdent := fd.Recv.List[0].Names[0]
	if recvIdent.Name == "_" {
		return nil
	}
	v, ok := pass.TypesInfo.Defs[recvIdent].(*types.Var)
	if !ok {
		return nil
	}
	t := v.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var entry lockflow.State
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutex(f.Type()) {
			if entry == nil {
				entry = lockflow.State{}
			}
			entry[recvIdent.Name+"."+f.Name()] = lockflow.Lock{Kind: lockflow.Exclusive, Pos: fd.Name.Pos()}
		}
	}
	return entry
}

// collectGuards parses the field annotations of every struct declared in
// the package and validates that the named guard is a sibling mutex.
func collectGuards(pass *analysis.Pass) map[*types.Var]*guard {
	guards := make(map[*types.Var]*guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := make(map[string]*types.Var)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						siblings[name.Name] = v
					}
				}
			}
			for _, fld := range st.Fields.List {
				gname, pos := guardComment(fld)
				if gname == "" {
					continue
				}
				mu, ok := siblings[gname]
				if !ok {
					pass.Reportf(pos, "guarded by %s: %s has no field %q", gname, ts.Name.Name, gname)
					continue
				}
				if !isMutex(mu.Type()) {
					pass.Reportf(pos, "guarded by %s: %s.%s is %s, not a sync mutex", gname, ts.Name.Name, gname, mu.Type())
					continue
				}
				for _, name := range fld.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					guards[v] = &guard{field: v, name: gname, strct: ts.Name.Name, atomic: fromAtomic(v.Type())}
				}
			}
			return true
		})
	}
	return guards
}

// guardComment extracts the guard name from a field's line or doc comment.
func guardComment(fld *ast.Field) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], cg.Pos()
		}
	}
	return "", 0
}

func isMutex(t types.Type) bool {
	return lintutil.IsNamed(t, "sync", "Mutex") || lintutil.IsNamed(t, "sync", "RWMutex")
}

// fromAtomic reports whether t is declared in sync/atomic (atomic.Uint64
// and friends carry their own synchronization).
func fromAtomic(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

func checkFunc(pass *analysis.Pass, guards map[*types.Var]*guard, body *ast.BlockStmt, entry lockflow.State, outerOwned map[types.Object]bool) {
	g, res := lockflow.Analyze(pass.TypesInfo, body, entry)
	owned := constructedLocals(pass.TypesInfo, body)
	for o := range outerOwned {
		owned[o] = true
	}
	for _, b := range g.Reachable() {
		if !res.Seen[b.Index] {
			continue
		}
		st := res.In[b.Index]
		for _, stmt := range b.Stmts {
			// Accesses are judged against the state *before* this
			// statement's own lock operations: `mu.Lock()` and a guarded
			// access never share a statement in practice, and pre-state
			// is the conservative choice.
			checkStmt(pass, guards, owned, stmt, st)
			checkLits(pass, guards, owned, stmt, st)
			for _, op := range lockflow.Ops(pass.TypesInfo, stmt) {
				st, _ = lockflow.Apply(st, op)
			}
		}
	}
}

// checkLits recurses into the function literals of one statement. A
// literal launched by `go` runs concurrently, so its body starts with no
// locks held; any other literal — a sort.Slice comparator, a defer body,
// a callback invoked in place — inherits the lock state at its position,
// since that is the state it observes when called synchronously.
func checkLits(pass *analysis.Pass, guards map[*types.Var]*guard, owned map[types.Object]bool, stmt ast.Stmt, st lockflow.State) {
	concurrent := make(map[*ast.FuncLit]bool)
	if g, ok := stmt.(*ast.GoStmt); ok {
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			concurrent[lit] = true
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// The range body's statements live in blocks of their own;
			// only the header belongs to this leaf.
			for _, sub := range []ast.Node{n.Key, n.Value, n.X} {
				if sub != nil {
					checkLits(pass, guards, owned, &ast.ExprStmt{X: sub.(ast.Expr)}, st)
				}
			}
			return false
		case *ast.FuncLit:
			entry := st
			if concurrent[n] {
				entry = nil
			}
			checkFunc(pass, guards, n.Body, entry, owned)
			return false // nested literals are reached through the recursion
		}
		return true
	})
}

// checkStmt verifies every guarded-field access in one statement.
func checkStmt(pass *analysis.Pass, guards map[*types.Var]*guard, owned map[types.Object]bool, stmt ast.Stmt, st lockflow.State) {
	writes := writeTargets(stmt)
	exempt := atomicArgs(pass.TypesInfo, stmt)
	lintutil.InspectLeaf(stmt, func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		gd, ok := guards[v]
		if !ok || gd.atomic {
			return
		}
		if exempt[sel] {
			return
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && owned[pass.TypesInfo.Uses[base]] {
			return
		}
		key := types.ExprString(sel.X) + "." + gd.name
		lock := st[key]
		write := writes[sel]
		switch {
		case lock.Kind == lockflow.Exclusive:
			// Held exclusively: any access is fine.
		case lock.Kind == lockflow.Read:
			if write {
				pass.Reportf(sel.Pos(), "write to %s.%s while %s is only read-locked; writes need %s.Lock()",
					gd.strct, v.Name(), key, key)
			}
		case lock.Kind == lockflow.Maybe:
			pass.Reportf(sel.Pos(), "%s of %s.%s: %s is held on only some paths to this point",
				rw(write), gd.strct, v.Name(), key)
		default:
			pass.Reportf(sel.Pos(), "%s of %s.%s without holding %s (field is guarded by %s)",
				rw(write), gd.strct, v.Name(), key, gd.name)
		}
	})
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// writeTargets marks the selector expressions a statement mutates:
// assignment targets, inc/dec operands, and address-taken fields. The
// base of an index/star/selector chain is included — writing x.f[k] or
// *x.f mutates what x.f guards.
func writeTargets(stmt ast.Stmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(expr ast.Expr) {
		for {
			switch e := ast.Unparen(expr).(type) {
			case *ast.SelectorExpr:
				writes[e] = true
				return
			case *ast.IndexExpr:
				expr = e.X
			case *ast.StarExpr:
				expr = e.X
			case *ast.SliceExpr:
				expr = e.X
			default:
				return
			}
		}
	}
	lintutil.InspectLeaf(stmt, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				mark(n.Key)
			}
			if n.Value != nil {
				mark(n.Value)
			}
		}
	})
	return writes
}

// atomicArgs collects the guarded selectors accessed as &x.f arguments of
// sync/atomic calls — those accesses carry their own synchronization.
func atomicArgs(info *types.Info, stmt ast.Stmt) map[*ast.SelectorExpr]bool {
	exempt := make(map[*ast.SelectorExpr]bool)
	lintutil.InspectLeaf(stmt, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := lintutil.Callee(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					exempt[sel] = true
				}
			}
		}
	})
	return exempt
}

// constructedLocals finds the variables this function initialized from a
// fresh composite literal or new() — the constructor idiom, where the
// value has not escaped to another goroutine yet.
func constructedLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	lintutil.InspectNoFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isFreshValue(n.Rhs[i]) {
					if obj := info.Defs[id]; obj != nil {
						owned[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && isFreshValue(n.Values[i]) {
					if obj := info.Defs[id]; obj != nil {
						owned[obj] = true
					}
				}
			}
		}
	})
	return owned
}

// isFreshValue recognizes &T{...}, T{...}, and new(T).
func isFreshValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}
