// Package a is the guardedby golden fixture: `// guarded by mu` field
// contracts checked at every access, with the recognized escapes
// (constructors, sync/atomic, test files) and the annotation-validation
// findings.
package a

import (
	"sync"
	"sync/atomic"
)

type Pool struct {
	mu   sync.Mutex
	rwmu sync.RWMutex

	idle []int // guarded by mu
	// guarded by rwmu
	hits int
	seq  uint64        // guarded by mu
	gen  atomic.Uint64 // guarded by mu (atomic type: carries its own synchronization)
}

// access under the exclusive lock is the contract being honored.
func (p *Pool) take() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.idle[0]
	p.idle = p.idle[1:]
	return n
}

// reads under RLock are fine.
func (p *Pool) readHits() int {
	p.rwmu.RLock()
	defer p.rwmu.RUnlock()
	return p.hits
}

// a bare read without the mutex held.
func (p *Pool) badRead() int {
	return p.idle[0] // want `read of Pool\.idle without holding p\.mu \(field is guarded by mu\)`
}

// a bare write.
func (p *Pool) badWrite(n int) {
	p.idle = append(p.idle, n) // want `write of Pool\.idle without holding p\.mu` `read of Pool\.idle without holding p\.mu`
}

// writing under a read lock tears concurrent readers.
func (p *Pool) writeUnderRLock() {
	p.rwmu.RLock()
	defer p.rwmu.RUnlock()
	p.hits++ // want `write to Pool\.hits while p\.rwmu is only read-locked; writes need p\.rwmu\.Lock\(\)`
}

// locked on only some paths to the access.
func (p *Pool) maybeHeld(c bool) int {
	if c {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	return len(p.idle) // want `read of Pool\.idle: p\.mu is held on only some paths to this point`
}

// taking a guarded field's address is a write-shaped escape.
func (p *Pool) addrOf() *[]int {
	return &p.idle // want `write of Pool\.idle without holding p\.mu`
}

// constructor escape: the value cannot be shared yet.
func newPool(ns []int) *Pool {
	p := &Pool{}
	p.idle = append(p.idle, ns...)
	p.hits = 0
	return p
}

// new() is a constructor too.
func newPoolNew() *Pool {
	p := new(Pool)
	p.seq = 1
	return p
}

// sync/atomic calls on a guarded plain field carry their own
// synchronization; fields of an atomic type are exempt everywhere.
func (p *Pool) counters() uint64 {
	atomic.AddUint64(&p.seq, 1)
	p.gen.Add(1)
	return atomic.LoadUint64(&p.seq) + p.gen.Load()
}

// a plain access to the atomically-annotated field still needs the lock.
func (p *Pool) badSeq() uint64 {
	return p.seq // want `read of Pool\.seq without holding p\.mu`
}

// the lock state is per-path: released before the access.
func (p *Pool) unlockedTooEarly() int {
	p.mu.Lock()
	p.mu.Unlock()
	return p.idle[0] // want `read of Pool\.idle without holding p\.mu`
}

// annotation validation: the guard must be an existing sibling mutex.
type Bad struct {
	data []int // guarded by nosuch // want `guarded by nosuch: Bad has no field "nosuch"`
	m    sync.Map
	rows []int // guarded by m // want `guarded by m: Bad\.m is sync\.Map, not a sync mutex`
}

// a goroutine body runs concurrently: it starts with nothing held even
// though the launcher holds the lock.
func (p *Pool) spawn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.idle = nil // want `write of Pool\.idle without holding p\.mu`
	}()
}

// any other literal inherits the lock state at its position: a sort
// comparator or callback invoked under the lock is fine...
func (p *Pool) inherited() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	sum := func() int {
		n := 0
		for _, v := range p.idle {
			n += v
		}
		return n
	}
	return sum()
}

// ...and one positioned before the Lock starts without it.
func (p *Pool) inheritedUnlocked() func() int {
	f := func() int { return len(p.idle) } // want `read of Pool\.idle without holding p\.mu`
	p.mu.Lock()
	defer p.mu.Unlock()
	return f
}

// a *Locked method is the caller-holds-the-lock convention: it is checked
// as if every mutex field of its receiver were held.
func (p *Pool) takeLocked() int {
	n := p.idle[0]
	p.idle = p.idle[1:]
	p.hits++
	return n
}

// the convention only covers the receiver's own mutexes.
func (p *Pool) otherLocked(q *Pool) {
	q.idle = nil // want `write of Pool\.idle without holding q\.mu`
}
