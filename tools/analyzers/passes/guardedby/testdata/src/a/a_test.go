package a

import "testing"

// Test files are exempt: single-threaded inspection is legitimate and
// `make race` covers the rest. No diagnostics expected here.
func TestInspect(t *testing.T) {
	p := &Pool{}
	p.idle = []int{1}
	if p.idle[0] != 1 {
		t.Fatal("unexpected")
	}
}
