package a

// A reviewed exception: a stats snapshot that tolerates a torn read.
func (p *Pool) approxLen() int {
	//lint:ignore desword/guardedby fixture models a tolerated racy read
	return len(p.idle)
}
