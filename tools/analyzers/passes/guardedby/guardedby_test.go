package guardedby_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/guardedby"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "a")
}
