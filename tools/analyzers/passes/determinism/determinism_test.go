package determinism_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "internal/qmercurial", "internal/trace", "internal/zkedb/store")
}
