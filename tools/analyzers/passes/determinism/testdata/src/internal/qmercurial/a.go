// Package qmercurial is a golden fixture for determinism: wall-clock reads
// and map-iteration-order-dependent output are diagnosed in proof packages.
package qmercurial

import (
	"sort"
	"strings"
	"time"
)

func timestamped() int64 {
	return time.Now().Unix() // want "time.Now in a proof package"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in a proof package"
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below, so iteration order cannot leak
	}
	sort.Strings(keys)
	return keys
}

func hashed(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString inside range over map"
	}
	return b.String()
}

func concatenated(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "string built inside range over map"
	}
	return out
}

func suppressedClock() time.Time {
	//lint:ignore desword/determinism fixture models a legacy timestamped header
	return time.Now()
}
