package qmercurial

// Benchmarks and tests time things; the analyzer exempts _test.go files.

import "time"

func wallClockInTest() time.Time { return time.Now() }
