// Package store is a golden fixture for determinism: the node-store backends
// sit on the proof path (replay order decides the tree a prover reopens), so
// they inherit the same wall-clock and map-iteration bans as the proof
// packages themselves.
package store

import (
	"sort"
	"time"
)

func stampedBatch() int64 {
	return time.Now().UnixNano() // want "time.Now in a proof package"
}

func listUnsorted(index map[string][]byte) []string {
	var keys []string
	for k := range index {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

func listSorted(index map[string][]byte) []string {
	var keys []string
	for k := range index {
		keys = append(keys, k) // sorted below, so iteration order cannot leak
	}
	sort.Strings(keys)
	return keys
}

func countLive(index map[string][]byte) int {
	n := 0
	for range index {
		n++ // order-independent: counting is fine
	}
	return n
}
