// Package trace is off the enforced path: event records legitimately carry
// wall-clock timestamps.
package trace

import "time"

func stamp() time.Time { return time.Now() }
