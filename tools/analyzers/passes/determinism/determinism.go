// Package determinism keeps proof generation and verification free of
// nondeterminism sources.
//
// Paper invariant: EDB-commit, EDB-prove and EDB-verify are pure functions
// of (CRS, database, key). Two honest parties replaying the same inputs
// must produce byte-identical commitments and reach identical verdicts —
// the audit log and the incentive mechanism depend on it. Wall-clock reads
// (time.Now/Since/Until) and Go's randomized map iteration order are the
// two ways nondeterminism has crept into such code paths in practice, so
// inside the proof packages the analyzer forbids direct wall-clock calls
// and flags range-over-map loops whose bodies produce order-dependent
// output (appending to a slice that is never subsequently sorted in the
// same function, writing to a Write-style sink, or building a string).
// Order-independent map loop bodies — populating another map, counting —
// are fine.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/internal/lintutil"
)

var enforced = regexp.MustCompile(`(^|/)internal/(zkedb|qmercurial|mercurial|chlmr|rsavc|group|poc)(/|$)`)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads and order-dependent map iteration in proof generation/verification",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !enforced.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := lintutil.Callee(pass.TypesInfo, n)
			for _, name := range []string{"Now", "Since", "Until"} {
				if lintutil.IsFunc(callee, "time", name) {
					pass.Reportf(n.Pos(),
						"time.%s in a proof package; proof generation/verification must be a pure function of (CRS, db, key) — move timing to the caller or the obs timer",
						name)
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		}
		return true
	})
}

// checkMapRange flags a range over a map whose body emits order-dependent
// output.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// append(target, ...) is order-dependent unless target is
			// sorted later in the same function.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if obj := pass.TypesInfo.Uses[id]; obj == types.Universe.Lookup("append") && len(n.Args) > 0 {
					target := types.ExprString(ast.Unparen(n.Args[0]))
					if !sortedLater(pass, fn, rng.End(), target) {
						pass.Reportf(n.Pos(),
							"append to %s inside range over map: slice order depends on map iteration order; sort %s afterwards or iterate sorted keys",
							target, target)
					}
				}
			}
			// Writes to an io.Writer-shaped sink (hash.Hash included)
			// serialize elements in iteration order.
			if callee := lintutil.Callee(pass.TypesInfo, n); callee != nil {
				switch callee.Name() {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					if lintutil.ReceiverExpr(n) != nil {
						pass.Reportf(n.Pos(),
							"%s inside range over map writes elements in map iteration order; iterate sorted keys", callee.Name())
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if lt := pass.TypesInfo.TypeOf(n.Lhs[0]); lt != nil {
					if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(),
							"string built inside range over map depends on map iteration order; iterate sorted keys")
					}
				}
			}
		}
		return true
	})
}

// sortFuncs are the sort entry points that make a previously appended
// slice order-independent again.
var sortFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Strings": true, "sort.Ints": true,
	"sort.Float64s": true,
	"slices.Sort":   true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedLater reports whether fn sorts target (by expression identity)
// somewhere after pos.
func sortedLater(pass *analysis.Pass, fn *ast.FuncDecl, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		callee := lintutil.Callee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if !sortFuncs[callee.Pkg().Name()+"."+callee.Name()] {
			return true
		}
		if types.ExprString(ast.Unparen(call.Args[0])) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
