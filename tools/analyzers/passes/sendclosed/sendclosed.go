// Package sendclosed finds channel operations that panic at runtime or
// invert channel ownership: sends reachable after a close of the same
// channel value, a second close reachable after the first, and a
// function that closes a channel it consumes.
//
// Paper invariant: the pipeline's shutdown paths (collector stop
// channels, the journal's rotation, the pool's drain) communicate over
// channels; `close` is the broadcast primitive, and both send-on-closed
// and close-of-closed are unrecoverable panics that take a proxy serving
// thousands of in-flight queries down with them. The race detector only
// sees the interleaving that actually panicked; this pass walks the CFG
// (tools/analyzers/cfg) with a closed-channel dataflow and reports the
// path itself.
//
// The Go idiom is that the *sender* owns the close. Close on a
// receive-only channel is already a compile error, so the misuse that
// survives the compiler is its moral twin: a function that receives from
// (or ranges over) a channel and also closes it, without ever sending —
// a consumer closing its producer's channel. That is reported at the
// close site. Reassigning a channel variable (ch = make(...)) resets its
// tracked state, and function literals are analyzed as functions of
// their own: a goroutine body's sends are concurrent with, not ordered
// after, the enclosing function's close.
package sendclosed

import (
	"go/ast"
	"go/token"
	"go/types"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/cfg"
	"desword/tools/analyzers/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "sendclosed",
	Doc:  "no channel send or close reachable after a close of the same channel; consumers must not close",
	Run:  run,
}

// closedState tracks one channel identity on one path.
type closedState struct {
	pos      token.Pos // the close site
	definite bool      // closed on every path here vs only some
}

// state maps channel identity (rendered expression) → closed state.
type state map[string]closedState

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

func join(a, b state) state {
	out := make(state, len(a)+len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = closedState{pos: va.pos, definite: va.definite && vb.definite}
		} else {
			out[k] = closedState{pos: va.pos}
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = closedState{pos: vb.pos}
		}
	}
	return out
}

// chanOp is one channel operation found in a statement, in source order.
type chanOp struct {
	id   string
	pos  token.Pos
	kind opKind
}

type opKind int

const (
	opClose opKind = iota
	opSend
	opAssign // channel variable rebound: state resets
)

func ops(info *types.Info, stmt ast.Stmt) []chanOp {
	var out []chanOp
	lintutil.InspectLeaf(stmt, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinClose(info, n) {
				out = append(out, chanOp{id: types.ExprString(n.Args[0]), pos: n.Pos(), kind: opClose})
			}
		case *ast.SendStmt:
			out = append(out, chanOp{id: types.ExprString(n.Chan), pos: n.Arrow, kind: opSend})
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if t := info.Types[lhs].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						out = append(out, chanOp{id: types.ExprString(lhs), pos: lhs.Pos(), kind: opAssign})
					}
				}
			}
		}
	})
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		lintutil.Functions(f, func(decl ast.Node, body *ast.BlockStmt) {
			checkFunc(pass, body)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	res := cfg.Forward(g, cfg.Problem[state]{
		Entry: nil,
		Transfer: func(b *cfg.Block, in state) state {
			st := in
			for _, stmt := range b.Stmts {
				for _, op := range ops(pass.TypesInfo, stmt) {
					st = apply(st, op)
				}
			}
			return st
		},
		Join:  join,
		Equal: equal,
	})

	// Report phase: re-simulate each reachable block from its fixpoint
	// input (reporting inside Transfer would duplicate per iteration).
	for _, b := range g.Reachable() {
		if !res.Seen[b.Index] {
			continue
		}
		st := res.In[b.Index]
		for _, stmt := range b.Stmts {
			for _, op := range ops(pass.TypesInfo, stmt) {
				if prev, closed := st[op.id]; closed {
					line := pass.Fset.Position(prev.pos).Line
					switch {
					case op.kind == opSend && prev.definite:
						pass.Reportf(op.pos, "send on %s after close (closed at line %d); this panics", op.id, line)
					case op.kind == opSend:
						pass.Reportf(op.pos, "send on %s that is closed on some paths here (closed at line %d)", op.id, line)
					case op.kind == opClose && prev.definite:
						pass.Reportf(op.pos, "close of %s which is already closed (closed at line %d); this panics", op.id, line)
					}
				}
				st = apply(st, op)
			}
		}
	}

	checkConsumerClose(pass, body)
}

// isBuiltinClose recognizes a call of the close builtin (not a local
// function that happens to be named close).
func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

func apply(st state, op chanOp) state {
	out := st.clone()
	switch op.kind {
	case opClose:
		out[op.id] = closedState{pos: op.pos, definite: true}
	case opAssign:
		delete(out, op.id)
	}
	return out
}

// checkConsumerClose reports a close of a channel this function receives
// from but never sends on — the consumer closing the producer's channel.
// Sends are counted anywhere in the function's text, function literals
// included: a function that spawns producer goroutines, joins them and
// then closes their channel is the owning side, not a consumer.
func checkConsumerClose(pass *analysis.Pass, body *ast.BlockStmt) {
	recv := make(map[string]bool)
	sent := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			sent[types.ExprString(s.Chan)] = true
		}
		return true
	})
	type closeSite struct {
		id  string
		pos token.Pos
	}
	var closes []closeSite
	lintutil.InspectNoFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				recv[types.ExprString(n.X)] = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					recv[types.ExprString(n.X)] = true
				}
			}
		case *ast.CallExpr:
			if isBuiltinClose(pass.TypesInfo, n) {
				closes = append(closes, closeSite{id: types.ExprString(n.Args[0]), pos: n.Pos()})
			}
		}
	})
	for _, c := range closes {
		if recv[c.id] && !sent[c.id] {
			pass.Reportf(c.pos, "close of %s by its consumer (this function receives from it and never sends); the sender owns the close", c.id)
		}
	}
}
