package sendclosed_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/sendclosed"
)

func TestSendclosed(t *testing.T) {
	analysistest.Run(t, "testdata", sendclosed.Analyzer, "a")
}
