package a

// A reviewed exception: a drain helper that owns the shutdown sequence.
func drainAndClose(in chan int) {
	for range in {
	}
	//lint:ignore desword/sendclosed fixture models a documented shutdown owner
	close(in)
}
