// Package a is the sendclosed golden fixture: sends and closes reachable
// after a close of the same channel, consumer-side closes, and the legal
// shapes (producer close-after-send, reassignment, concurrent literals)
// that must stay silent.
package a

func work() {}

// the producer idiom: send everything, then close. Silent.
func producer(out chan int) {
	for i := 0; i < 3; i++ {
		out <- i
	}
	close(out)
}

// a send definitely after the close panics.
func sendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1 // want `send on ch after close \(closed at line \d+\); this panics`
}

// closing twice panics.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `close of ch which is already closed \(closed at line \d+\); this panics`
}

// closed on only one branch: the send is a some-paths finding.
func maybeClosed(c bool) {
	ch := make(chan int)
	if c {
		close(ch)
	}
	ch <- 1 // want `send on ch that is closed on some paths here \(closed at line \d+\)`
}

// a close inside a loop after a definite close reports on every path in.
func closeThenLoop() {
	ch := make(chan struct{})
	close(ch)
	for i := 0; i < 2; i++ {
		close(ch) // want `close of ch which is already closed`
	}
}

// a close only inside the loop is a maybe-state on the back edge; the
// pass deliberately reports only definite re-closes, so this is silent.
func closeInLoop(n int) {
	ch := make(chan struct{})
	for i := 0; i < n; i++ {
		close(ch)
	}
	_ = ch
}

// rebinding the variable resets its tracked state.
func reassign() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	ch <- 1
	close(ch)
}

// identities are per-expression: closing one field says nothing about
// another.
type pipes struct {
	a chan int
	b chan int
}

func (p *pipes) closeA() {
	close(p.a)
	p.b <- 1
	p.a <- 1 // want `send on p\.a after close`
}

// a consumer that closes the channel it drains inverts ownership.
func consumer(in chan int) {
	for v := range in {
		_ = v
	}
	close(in) // want `close of in by its consumer \(this function receives from it and never sends\); the sender owns the close`
}

// receiving with <- counts as consuming too.
func consumerRecv(in chan int) {
	v := <-in
	_ = v
	close(in) // want `close of in by its consumer`
}

// a function that both sends and receives owns the channel; its close is
// legal.
func owner() {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	close(ch)
}

// function literals are functions of their own: the goroutine's sends are
// concurrent with, not ordered after, the enclosing close, and its own
// state starts fresh.
func spawn(ch chan int) {
	go func() {
		ch <- 1
	}()
	close(ch)
}

// fan-in: spawning producers, joining them, then closing and draining
// their channel is owner behaviour — the literals' sends count, so the
// consumer-close check stays quiet.
func fanIn(work []int, join func()) {
	errCh := make(chan int, len(work))
	for range work {
		go func() {
			errCh <- 1
		}()
	}
	join()
	close(errCh)
	for v := range errCh {
		_ = v
	}
}
