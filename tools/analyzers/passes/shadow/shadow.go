// Package shadow is a deliberately narrow, low-noise variant of the
// x/tools shadow pass, implemented locally because the build image has no
// module proxy access. It flags only the shadowing class that has caused
// real bugs in this codebase's ancestors: a := declaration that shadows a
// parameter or named result of the function it appears in. Shadowing a
// named result (classically `err`) makes `defer`red error handling and
// naked returns observe the wrong value; shadowing a parameter silently
// forks state mid-function. Generic block-local shadowing (the noisy part
// of the upstream pass) is out of scope.
package shadow

import (
	"go/ast"
	"go/types"

	"desword/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag := declarations that shadow a parameter or named result of the enclosing function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Type, n.Body)
				return false // the nested walk handles inner literals
			}
			return true
		})
	}
	return nil
}

// checkFunc flags shadowing of ft's own parameters/results inside body.
// Nested function literals are checked against their own signatures only:
// redeclaring an outer function's name inside a closure is usually an
// intentional capture cut.
func checkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	outer := make(map[string]string) // name → "parameter" | "named result"
	collect := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if name.Name != "_" {
					outer[name.Name] = kind
				}
			}
		}
	}
	collect(ft.Params, "parameter")
	collect(ft.Results, "named result")
	if len(outer) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // checked separately against its own signature
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != ":=" {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			kind, shadows := outer[id.Name]
			if !shadows {
				continue
			}
			// Only flag genuine new objects (a := with one new and one
			// existing var redeclares, which is not shadowing).
			if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					pass.Reportf(id.Pos(),
						"declaration of %s shadows the %s of the enclosing function", id.Name, kind)
				}
			}
		}
		return true
	})

	checkRanges(pass, body, outer)
}

// checkRanges extends the same rule to for/range clause variables.
func checkRanges(pass *analysis.Pass, body *ast.BlockStmt, outer map[string]string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.Tok.String() != ":=" {
			return true
		}
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id == nil || id.Name == "_" {
				continue
			}
			if kind, shadows := outer[id.Name]; shadows {
				if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
					pass.Reportf(id.Pos(),
						"range variable %s shadows the %s of the enclosing function", id.Name, kind)
				}
			}
		}
		return true
	})
}
