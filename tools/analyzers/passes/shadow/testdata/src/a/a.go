// Package a is a golden fixture for shadow: := declarations that shadow a
// parameter or named result of the enclosing function are diagnosed;
// block-local shadowing of anything else is not.
package a

import "errors"

func shadowsResult() (err error) {
	if true {
		err := errors.New("inner") // want "declaration of err shadows the named result"
		_ = err
	}
	return nil
}

func shadowsParam(n int) int {
	if n > 0 {
		n := n - 1 // want "declaration of n shadows the parameter"
		return n
	}
	return n
}

func shadowsInRange(items []int) (total int) {
	for _, total := range items { // want "range variable total shadows the named result"
		_ = total
	}
	return 0
}

func pair(n int) (int, error) { return n, nil }

func okNewNames(n int) (int, error) {
	v, err := pair(n) // err is a fresh local, not a shadow
	return v, err
}

func okIfScoped() int {
	if err := errors.New("x"); err != nil { // no parameter or result named err
		return 1
	}
	return 0
}

func okClosureCut(n int) func() int {
	return func() int {
		n := 1 // the literal's own scope; intentional capture cut
		return n
	}
}

func closureOwnParam() func(int) int {
	return func(m int) int {
		if m > 0 {
			m := m * 2 // want "declaration of m shadows the parameter"
			return m
		}
		return m
	}
}

func suppressedShadow(w int) int {
	if w > 0 {
		//lint:ignore desword/shadow fixture narrows the variable deliberately
		w := w - 1
		_ = w
	}
	return w
}
