package shadow_test

import (
	"testing"

	"desword/tools/analyzers/analysistest"
	"desword/tools/analyzers/passes/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, "testdata", shadow.Analyzer, "a")
}
