package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseComments returns every comment of src in order.
func parseComments(t *testing.T, src string) (*token.FileSet, []*ast.Comment) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var cs []*ast.Comment
	for _, cg := range f.Comments {
		cs = append(cs, cg.List...)
	}
	return fset, cs
}

func TestParseWants(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 // want "plain"
	_ = 2 // want +3 "offset"
	_ = 3 // want ` + "`raw \\d+ pattern`" + `
	_ = 4 // want "two" "patterns"
	_ = 5 // want +1 "off" ` + "`and raw`" + `
	_ = 6 // not a want
}
`
	fset, cs := parseComments(t, src)
	var got []*want
	for _, c := range cs {
		ws, err := parseWants(fset, c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ws...)
	}

	wantOut := []struct {
		line    int
		pattern string
	}{
		{4, "plain"},
		{8, "offset"}, // comment on line 5, +3
		{6, `raw \d+ pattern`},
		{7, "two"},
		{7, "patterns"},
		{9, "off"}, // comment on line 8, +1 applies to every pattern
		{9, "and raw"},
	}
	if len(got) != len(wantOut) {
		t.Fatalf("parsed %d wants, want %d", len(got), len(wantOut))
	}
	for i, w := range got {
		if w.line != wantOut[i].line || w.pattern != wantOut[i].pattern {
			t.Errorf("want[%d] = line %d pattern %q, want line %d pattern %q",
				i, w.line, w.pattern, wantOut[i].line, wantOut[i].pattern)
		}
	}

	// The compiled regexp must honor the raw pattern.
	if !got[2].rx.MatchString("raw 42 pattern") {
		t.Errorf("raw pattern did not compile to a matching regexp")
	}
}

func TestParseWantsErrors(t *testing.T) {
	cases := []string{
		`package p
// want "unbalanced\"`,
		`package p
// want "bad regexp ("`,
	}
	for _, src := range cases {
		fset, cs := parseComments(t, src)
		for _, c := range cs {
			if ws, err := parseWants(fset, c); err == nil && len(ws) > 0 {
				t.Errorf("parseWants(%q) = %v, want error or no wants", c.Text, ws)
			}
		}
	}
}
