// Package analysistest is a stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// golden packages under testdata/src and matches the diagnostics against
// `// want "regexp"` comments. Suppression comments are honored exactly as
// in the real drivers, so testdata can assert both that violations are
// caught and that a justified //lint:ignore silences them.
package analysistest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/loader"
)

// Run analyzes each package path (a directory under testdata/src) with a
// and reports mismatches against the // want expectations via t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runPackage(t, testdata, a, pkgPath)
	}
}

func runPackage(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := &tdLoader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*tdPackage),
	}
	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("%s: loading %s: %v", a.Name, pkgPath, err)
	}
	for _, terr := range pkg.typeErrors {
		t.Errorf("%s: typecheck %s: %v", a.Name, pkgPath, terr)
	}

	diags, err := analysis.Run(a, ld.fset, pkg.files, pkg.types, pkg.info)
	if err != nil {
		t.Fatalf("%s: running on %s: %v", a.Name, pkgPath, err)
	}
	diags = append(diags, analysis.CollectSuppressions(ld.fset, pkg.files).Malformed()...)
	analysis.SortDiagnostics(ld.fset, diags)

	wants := collectWants(t, ld.fset, pkg.files)
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		if !consumeWant(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// want is one `// want "rx"` expectation.
type want struct {
	file    string
	line    int
	pattern string
	rx      *regexp.Regexp
	matched bool
}

// wantRe matches `// want "rx"` with an optional `+N` line offset before
// the patterns: `// want +2 "rx"` expects the diagnostic N lines below
// the comment. CFG analyzers report exit-path findings at the return
// statement or the closing brace — lines a comment cannot share — and
// the offset lets a fixture pin those without restructuring the code.
// Patterns are double-quoted or backquoted; backquotes spare regexps the
// double escaping, as in upstream analysistest.
var wantRe = regexp.MustCompile(`//\s*want\s+(?:\+(\d+)\s+)?(["` + "`" + `].*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, err := parseWants(fset, c)
				if err != nil {
					t.Fatal(err)
				}
				wants = append(wants, w...)
			}
		}
	}
	return wants
}

// parseWants extracts the expectations of one comment, applying its +N
// offset to every pattern it carries.
func parseWants(fset *token.FileSet, c *ast.Comment) ([]*want, error) {
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		return nil, nil
	}
	pos := fset.Position(c.Pos())
	line := pos.Line
	if m[1] != "" {
		off, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, fmt.Errorf("bad want offset %q at %s: %w", m[1], pos, err)
		}
		line += off
	}
	var wants []*want
	for _, q := range splitQuoted(m[2]) {
		pattern, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s at %s: %w", q, pos, err)
		}
		rx, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q at %s: %w", pattern, pos, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: line, pattern: pattern, rx: rx})
	}
	return wants, nil
}

// splitQuoted extracts the double-quoted and backquoted chunks of a want
// payload. strconv.Unquote handles both forms downstream.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 || (s[0] != '"' && s[0] != '`') {
			return out
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

func consumeWant(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// tdLoader type-checks testdata packages from source, resolving imports
// first against sibling testdata packages (so fixtures can model
// internal/obs and friends) and then against stdlib export data obtained
// from `go list -export`.
type tdLoader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*tdPackage
	stdImp   types.Importer // one importer per loader keeps type identities consistent
}

type tdPackage struct {
	files      []*ast.File
	types      *types.Package
	info       *types.Info
	typeErrors []error
}

func (l *tdLoader) load(pkgPath string) (*tdPackage, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	p := &tdPackage{files: files}
	conf := types.Config{
		Importer: &tdImporter{loader: l},
		Error:    func(err error) { p.typeErrors = append(p.typeErrors, err) },
	}
	p.info = loader.NewInfo()
	p.types, _ = conf.Check(pkgPath, l.fset, files, p.info)
	l.pkgs[pkgPath] = p
	return p, nil
}

type tdImporter struct {
	loader *tdLoader
}

func (i *tdImporter) Import(path string) (*types.Package, error) {
	// Sibling testdata package?
	if _, err := os.Stat(filepath.Join(i.loader.testdata, "src", filepath.FromSlash(path))); err == nil {
		p, err := i.loader.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	if err := ensureStdExport(path); err != nil {
		return nil, err
	}
	if i.loader.stdImp == nil {
		i.loader.stdImp = importer.ForCompiler(i.loader.fset, "gc", stdLookup)
	}
	return i.loader.stdImp.Import(path)
}

// stdExports caches stdlib export-data file locations process-wide. The
// build cache makes repeat `go list -export` calls cheap, but one exec per
// package per process is still worth avoiding.
var (
	stdMu      sync.Mutex
	stdExports = map[string]string{}
)

func ensureStdExport(path string) error {
	stdMu.Lock()
	defer stdMu.Unlock()
	if _, ok := stdExports[path]; ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %w\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			stdExports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func stdLookup(path string) (io.ReadCloser, error) {
	stdMu.Lock()
	file, ok := stdExports[path]
	stdMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}
