// Command desword-vet is the multichecker for the desword project
// invariants. It runs in two modes:
//
//   - Standalone: `desword-vet [-dir module] [packages...]` loads the
//     module's packages via `go list -export` and analyzes them. This is
//     what `make lint` runs.
//
//   - Vettool: when invoked by `go vet -vettool=$(which desword-vet)`, it
//     speaks the cmd/go unitchecker protocol (-V=full, -flags, *.cfg) and
//     analyzes one compilation unit per invocation, reusing go vet's
//     per-package caching.
//
// Exit status: 0 clean, 1 findings or load failure (standalone),
// 2 findings (vettool, matching cmd/vet).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"desword/tools/analyzers/analysis"
	"desword/tools/analyzers/loader"
	"desword/tools/analyzers/passes/bigintalias"
	"desword/tools/analyzers/passes/cryptorand"
	"desword/tools/analyzers/passes/ctxfirst"
	"desword/tools/analyzers/passes/determinism"
	"desword/tools/analyzers/passes/errwrap"
	"desword/tools/analyzers/passes/eventfield"
	"desword/tools/analyzers/passes/goroutinelife"
	"desword/tools/analyzers/passes/guardedby"
	"desword/tools/analyzers/passes/lockbalance"
	"desword/tools/analyzers/passes/metriclabel"
	"desword/tools/analyzers/passes/sendclosed"
	"desword/tools/analyzers/passes/shadow"
)

var analyzers = []*analysis.Analyzer{
	bigintalias.Analyzer,
	cryptorand.Analyzer,
	ctxfirst.Analyzer,
	determinism.Analyzer,
	errwrap.Analyzer,
	eventfield.Analyzer,
	goroutinelife.Analyzer,
	guardedby.Analyzer,
	lockbalance.Analyzer,
	metriclabel.Analyzer,
	sendclosed.Analyzer,
	shadow.Analyzer,
}

func main() {
	// cmd/go probes vettools with -V=full (for the build cache key) and
	// -flags (for flag registration) before handing over .cfg files.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
			fmt.Printf("%s version desword-vet-1.0.0\n", name)
			return
		}
		if arg == "-flags" || arg == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitchecker(os.Args[1]))
	}

	dir := flag.String("dir", ".", "module directory to analyze")
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.ID(), a.Doc)
		}
		return
	}
	os.Exit(standalone(*dir, selected(*only), flag.Args()))
}

func selected(only string) []*analysis.Analyzer {
	if only == "" {
		return analyzers
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		want[strings.TrimSpace(strings.TrimPrefix(name, analysis.Prefix))] = true
	}
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func standalone(dir string, as []*analysis.Analyzer, patterns []string) int {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "desword-vet: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analyze(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, as)
		if err != nil {
			fmt.Fprintf(os.Stderr, "desword-vet: %s: %v\n", pkg.Path, err)
			return 1
		}
		if len(diags) > 0 {
			exit = 1
			printDiags(pkg.Fset, diags)
			// Surface soft type errors only alongside findings: an
			// analyzer misled by a broken type graph should be debuggable.
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "desword-vet: note: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}
	return exit
}

// analyze runs the selected analyzers over one package through a shared
// suppression index and returns the surviving diagnostics plus the
// malformed- and stale-suppression reports, sorted. A //lint:ignore that
// suppresses nothing is a finding: it silently disables a check for the
// next edit to that line.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, as []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return analysis.RunAll(as, analyzers, fset, files, pkg, info)
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
}

// vetConfig mirrors the JSON config cmd/go hands to vet tools (the
// x/tools unitchecker.Config schema).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "desword-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "desword-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The tool exports no facts, but cmd/go requires the vetx file to
	// exist to cache the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("desword-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "desword-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, and we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "desword-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	var typeErr error
	conf := types.Config{
		Importer:    loader.ExportImporter(fset, cfg.PackageFile, cfg.ImportMap),
		FakeImportC: true,
		GoVersion:   cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	info := loader.NewInfo()
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	diags, err := analyze(fset, files, tpkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "desword-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiags(fset, diags)
	return 2
}
