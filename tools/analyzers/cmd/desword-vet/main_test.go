package main

import (
	"testing"

	"desword/tools/analyzers/loader"
)

// TestMainModuleClean is the tree gate: every analyzer must run clean over
// the parent desword module. A failure here means either a real invariant
// violation crept in (fix the code) or an analyzer grew a false positive
// (fix the analyzer, or suppress with a //lint:ignore carrying a reason).
func TestMainModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole parent module via go list -export")
	}
	pkgs, err := loader.Load("../../../..", "./...")
	if err != nil {
		t.Fatalf("loading parent module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for the parent module")
	}
	for _, pkg := range pkgs {
		diags, err := analyze(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
