package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressionSrc = `package p

func trailing() {
	bad() //lint:ignore desword/one trailing comments target their own line
}

func ownLine() {
	//lint:ignore desword/one standalone comments target the next line
	bad()
}

func multi() {
	//lint:ignore desword/one,desword/two a comma list silences several analyzers
	bad()
}

func wildcard() {
	//lint:ignore desword/* the wildcard silences everything on the line
	bad()
}

func malformed() {
	//lint:ignore desword/one
	bad()
}

func unrelated() {
	// a plain comment is not a directive
	bad()
}

func bad() {}
`

func parseSuppressionSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressionSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// lineOf returns the 1-based line of the first source line containing
// substr, so the test stays valid when the fixture is edited.
func lineOf(t *testing.T, substr string) int {
	t.Helper()
	for i, l := range strings.Split(suppressionSrc, "\n") {
		if strings.Contains(l, substr) {
			return i + 1
		}
	}
	t.Fatalf("fixture has no line containing %q", substr)
	return 0
}

func diagAt(fset *token.FileSet, files []*ast.File, line int, analyzer string) Diagnostic {
	tf := fset.File(files[0].Pos())
	return Diagnostic{Pos: tf.LineStart(line), Message: "m", Analyzer: analyzer}
}

func TestSuppressionPlacement(t *testing.T) {
	fset, files := parseSuppressionSrc(t)
	sup := CollectSuppressions(fset, files)

	cases := []struct {
		name       string
		line       int
		analyzer   string
		suppressed bool
	}{
		{"trailing same line", lineOf(t, "trailing comments target"), "desword/one", true},
		{"own line targets next", lineOf(t, "standalone comments") + 1, "desword/one", true},
		{"own line not its own", lineOf(t, "standalone comments"), "desword/one", false},
		{"comma list first", lineOf(t, "comma list") + 1, "desword/one", true},
		{"comma list second", lineOf(t, "comma list") + 1, "desword/two", true},
		{"comma list other", lineOf(t, "comma list") + 1, "desword/three", false},
		{"wildcard", lineOf(t, "wildcard silences") + 1, "desword/anything", true},
		{"malformed does not suppress", lineOf(t, "func malformed") + 2, "desword/one", false},
		{"plain comment", lineOf(t, "plain comment") + 1, "desword/one", false},
	}
	for _, c := range cases {
		d := diagAt(fset, files, c.line, c.analyzer)
		got := len(sup.Filter(c.analyzer, []Diagnostic{d})) == 0
		if got != c.suppressed {
			t.Errorf("%s: line %d analyzer %s: suppressed=%v, want %v", c.name, c.line, c.analyzer, got, c.suppressed)
		}
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	fset, files := parseSuppressionSrc(t)
	sup := CollectSuppressions(fset, files)
	mal := sup.Malformed()
	if len(mal) != 1 {
		t.Fatalf("got %d malformed directives, want 1: %v", len(mal), mal)
	}
	if mal[0].Analyzer != Prefix+"lint" {
		t.Errorf("malformed directive attributed to %s, want %slint", mal[0].Analyzer, Prefix)
	}
	if !strings.Contains(mal[0].Message, "needs a reason") {
		t.Errorf("malformed message = %q", mal[0].Message)
	}
	wantLine := lineOf(t, "func malformed") + 1
	if got := fset.Position(mal[0].Pos).Line; got != wantLine {
		t.Errorf("malformed directive reported at line %d, want %d", got, wantLine)
	}
}
