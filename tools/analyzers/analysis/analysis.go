// Package analysis is a self-contained, stdlib-only re-implementation of
// the subset of golang.org/x/tools/go/analysis that the desword analyzers
// need. The build image has no module proxy access, so the framework —
// Analyzer, Pass, diagnostics, and staticcheck-style suppression comments —
// lives here instead of being imported. The API mirrors x/tools closely
// enough that the analyzers would port to the upstream framework by
// changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Prefix is the namespace every analyzer is addressed under, both in
// diagnostics ("desword/cryptorand: ...") and in suppression comments
// ("//lint:ignore desword/cryptorand reason").
const Prefix = "desword/"

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the short analyzer name, e.g. "cryptorand". The fully
	// qualified ID is Prefix+Name.
	Name string
	// Doc is the one-paragraph description printed by desword-vet -help.
	Doc string
	// Run performs the analysis over one package and reports findings
	// through the Pass.
	Run func(*Pass) error
}

// ID returns the fully qualified analyzer name, e.g. "desword/cryptorand".
func (a *Analyzer) ID() string { return Prefix + a.Name }

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // fully qualified analyzer ID
}

// A Pass carries one type-checked package through one analyzer. Drivers
// construct it, invoke Analyzer.Run, and collect the diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.ID(),
	})
}

// InTestFile reports whether pos falls in a _test.go file. Analyzers that
// guard runtime invariants (cryptorand, determinism, ctxfirst's
// context.Background ban) exempt test files, where seeded randomness and
// ad-hoc contexts are legitimate.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run type-checks nothing itself; it drives the analyzer over an already
// type-checked package and returns the diagnostics that survive the
// package's //lint:ignore suppression comments. Malformed suppression
// comments (missing reason) are reported as findings in their own right so
// they cannot silently disable a check.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.ID(), err)
	}
	sup := CollectSuppressions(fset, files)
	return sup.Filter(a.ID(), pass.diags), nil
}

// RunAll drives the as analyzers over one package through a *shared*
// suppression index, so directive usage is visible across the whole
// suite, then appends the malformed- and stale-directive reports and
// sorts. known is the driver's full registry — it may be a superset of
// as (the -only flag), so a directive for a real-but-skipped analyzer is
// neither "unknown" nor judged stale; nil means as is the registry.
// This is what the drivers (standalone, unitchecker, the module-clean
// gate) call; Run stays for single-analyzer golden tests, which must not
// judge a fixture's directives against analyzers that did not run.
func RunAll(as, known []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	if known == nil {
		known = as
	}
	sup := CollectSuppressions(fset, files)
	ran := make(map[string]bool, len(as))
	registry := make(map[string]bool, len(known))
	for _, a := range known {
		registry[a.ID()] = true
	}
	var diags []Diagnostic
	for _, a := range as {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.ID(), err)
		}
		diags = append(diags, sup.Filter(a.ID(), pass.diags)...)
		ran[a.ID()] = true
	}
	diags = append(diags, sup.Malformed()...)
	diags = append(diags, sup.Stale(ran, registry)...)
	SortDiagnostics(fset, diags)
	return diags, nil
}

// ignoreRe matches "lint:ignore desword/name[,desword/name2] reason" after
// the comment marker has been stripped.
var ignoreRe = regexp.MustCompile(`^lint:ignore\s+(\S+)(.*)$`)

// A Suppression is one parsed //lint:ignore comment.
type Suppression struct {
	File      string
	Line      int  // line the comment appears on
	OwnLine   bool // comment stands alone, so it targets the next line
	Analyzers []string
	Reason    string
	Pos       token.Pos
	// hits counts the diagnostics this directive suppressed across every
	// analyzer run sharing the index — the input to the staleness audit.
	hits int
}

// Suppressions indexes the lint:ignore comments of one package.
type Suppressions struct {
	fset       *token.FileSet
	byFileLine map[string]map[int][]*Suppression
	malformed  []Diagnostic
}

// CollectSuppressions parses every comment group of files for lint:ignore
// directives. A directive suppresses matching diagnostics on its own line
// (trailing comment) or, when it stands alone on a line, on the next line —
// the same placement rules staticcheck uses.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byFileLine: make(map[string]map[int][]*Suppression)}
	for _, f := range files {
		// Record which lines hold non-comment tokens, to distinguish a
		// trailing comment from a comment standing on its own line.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				sup := &Suppression{
					File:      pos.Filename,
					Line:      pos.Line,
					OwnLine:   !codeLines[pos.Line],
					Analyzers: strings.Split(m[1], ","),
					Reason:    reason,
					Pos:       c.Pos(),
				}
				if reason == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "lint:ignore directive needs a reason",
						Analyzer: Prefix + "lint",
					})
					continue
				}
				line := sup.Line
				if sup.OwnLine {
					line++
				}
				if s.byFileLine[sup.File] == nil {
					s.byFileLine[sup.File] = make(map[int][]*Suppression)
				}
				s.byFileLine[sup.File][line] = append(s.byFileLine[sup.File][line], sup)
			}
		}
	}
	return s
}

// Malformed returns diagnostics for lint:ignore directives missing a
// reason. Drivers surface these once per package (not per analyzer).
func (s *Suppressions) Malformed() []Diagnostic { return s.malformed }

// Filter returns the diagnostics of analyzer id that are not suppressed.
func (s *Suppressions) Filter(id string, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !s.suppressed(id, d) {
			out = append(out, d)
		}
	}
	return out
}

func (s *Suppressions) suppressed(id string, d Diagnostic) bool {
	pos := s.fset.Position(d.Pos)
	for _, sup := range s.byFileLine[pos.Filename][pos.Line] {
		for _, a := range sup.Analyzers {
			if a == id || a == Prefix+"*" {
				sup.hits++
				return true
			}
		}
	}
	return false
}

// Stale audits the directives after every analyzer has filtered through
// this index: a //lint:ignore that suppressed zero diagnostics is dead
// weight that silently disables a check for whoever edits that line
// next, so it is a finding in its own right. ran holds the IDs of the
// analyzers that actually executed — a directive for an analyzer that
// was skipped (-only) is not judged — and registry holds every ID the
// driver knows, so a typo in the analyzer name is distinguished from a
// directive that merely stopped matching. Directives outside the
// desword/ namespace (for third-party tools) are left alone.
func (s *Suppressions) Stale(ran, registry map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, byLine := range s.byFileLine {
		for _, sups := range byLine {
			for _, sup := range sups {
				out = append(out, staleDiag(sup, ran, registry)...)
			}
		}
	}
	return out
}

func staleDiag(sup *Suppression, ran, registry map[string]bool) []Diagnostic {
	audited := false
	for _, a := range sup.Analyzers {
		if !strings.HasPrefix(a, Prefix) {
			continue
		}
		if a != Prefix+"*" && !registry[a] {
			return []Diagnostic{{
				Pos:      sup.Pos,
				Message:  fmt.Sprintf("lint:ignore names unknown analyzer %s", a),
				Analyzer: Prefix + "lint",
			}}
		}
		if a == Prefix+"*" || ran[a] {
			audited = true
		}
	}
	if !audited || sup.hits > 0 {
		return nil
	}
	return []Diagnostic{{
		Pos:      sup.Pos,
		Message:  fmt.Sprintf("stale lint:ignore: %s suppresses no diagnostics; remove it", strings.Join(sup.Analyzers, ",")),
		Analyzer: Prefix + "lint",
	}}
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer for
// stable output across runs.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
