package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// staleSrc exercises the staleness audit: directives that suppress a
// diagnostic, directives that suppress nothing, typoed analyzer names,
// and third-party directives outside the desword/ namespace.
const staleSrc = `package p

func used() {
	//lint:ignore desword/hit this one earns its keep
	bad()
}

func stale() {
	//lint:ignore desword/hit nothing on the next line trips the analyzer
	good()
}

func skipped() {
	//lint:ignore desword/cold the cold analyzer is registered but not run
	good()
}

func typo() {
	//lint:ignore desword/hitt typo in the analyzer name
	bad()
}

func foreign() {
	//lint:ignore SA1000 a third-party directive is not ours to audit
	good()
}

func wildcardStale() {
	//lint:ignore desword/* the wildcard is audited like a named directive
	good()
}

func bad()  {}
func good() {}
`

func parseStaleSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", staleSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// hitAnalyzer reports one diagnostic at every call of bad().
var hitAnalyzer = &Analyzer{
	Name: "hit",
	Doc:  "flags calls of bad",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						p.Reportf(call.Pos(), "call of bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

// coldAnalyzer is registered but never run (the -only scenario).
var coldAnalyzer = &Analyzer{
	Name: "cold",
	Doc:  "registered but skipped",
	Run:  func(*Pass) error { return nil },
}

func TestStaleSuppressionAudit(t *testing.T) {
	fset, files := parseStaleSrc(t)
	diags, err := RunAll(
		[]*Analyzer{hitAnalyzer},
		[]*Analyzer{hitAnalyzer, coldAnalyzer},
		fset, files, nil, nil,
	)
	if err != nil {
		t.Fatal(err)
	}

	byMsg := make(map[string]int)
	for _, d := range diags {
		byMsg[d.Message] = fset.Position(d.Pos).Line
		if d.Analyzer != Prefix+"lint" && d.Analyzer != Prefix+"hit" {
			t.Errorf("diagnostic attributed to %s: %s", d.Analyzer, d.Message)
		}
	}

	wantMsgs := []string{
		// stale(): directive for a ran analyzer with zero hits.
		"stale lint:ignore: desword/hit suppresses no diagnostics; remove it",
		// typo(): unknown name is distinguished from stale.
		"lint:ignore names unknown analyzer desword/hitt",
		// typo()'s bad() call survives, since desword/hitt suppresses nothing.
		"call of bad",
		// wildcardStale(): the wildcard hit nothing either.
		"stale lint:ignore: desword/* suppresses no diagnostics; remove it",
	}
	for _, m := range wantMsgs {
		if _, ok := byMsg[m]; !ok {
			t.Errorf("missing diagnostic %q in %v", m, diags)
		}
	}
	if len(diags) != len(wantMsgs) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(wantMsgs), diags)
	}

	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		switch {
		case strings.Contains(d.Message, "desword/cold"):
			t.Errorf("skipped analyzer's directive judged stale: %s", d.Message)
		case strings.Contains(d.Message, "SA1000"):
			t.Errorf("third-party directive audited: %s", d.Message)
		case d.Message == "stale lint:ignore: desword/hit suppresses no diagnostics; remove it":
			if want := srcLine(t, staleSrc, "nothing on the next line"); line != want {
				t.Errorf("stale report at line %d, want %d", line, want)
			}
		}
	}
}

// srcLine returns the 1-based line of the first line containing substr.
func srcLine(t *testing.T, src, substr string) int {
	t.Helper()
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, substr) {
			return i + 1
		}
	}
	t.Fatalf("no line contains %q", substr)
	return 0
}
