// Package lintutil holds the small type-query helpers the desword
// analyzers share: callee resolution, constant evaluation, and named-type
// matching, all against the stdlib go/types API.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Callee resolves the called function of call, or nil when the callee is
// not a declared function/method (builtin, conversion, func value).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsFunc reports whether fn is the function or method with the given
// package path and name, e.g. IsFunc(fn, "time", "Now").
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// ConstString evaluates expr to a compile-time string constant.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// IsNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsPkgPathSuffixNamed is IsNamed but matching the defining package by
// path suffix, so analyzers recognize both the real package
// ("desword/internal/obs") and an analysistest fixture ("internal/obs").
func IsPkgPathSuffixNamed(t types.Type, pathSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	return IsNamed(t, "context", "Context")
}

// ReceiverExpr returns the receiver expression of a method call, or nil.
func ReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// InspectNoFuncLit walks n in source order, calling f for every node,
// but does not descend into function literals: their bodies execute at
// another time (a goroutine, a defer, a stored callback) and must not be
// confused with the enclosing function's own control flow. CFG-based
// analyzers visit each literal separately via Functions.
func InspectNoFuncLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		f(n)
		return true
	})
}

// InspectLeaf walks one CFG leaf statement in source order. Like
// InspectNoFuncLit it skips function literals, and it additionally stops
// at a range statement's body: the CFG keeps the *ast.RangeStmt in its
// loop-head block (the node carries the per-iteration assignment), while
// the body statements are lowered into blocks of their own — so a walker
// that descended into Body would see every body statement twice and
// charge its effects to the head block.
func InspectLeaf(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			f(n)
			for _, sub := range []ast.Node{n.Key, n.Value, n.X} {
				if sub != nil {
					InspectLeaf(sub, f)
				}
			}
			return false
		}
		f(n)
		return true
	})
}

// Functions calls fn for every function body in f — declarations and
// function literals alike — so a CFG analyzer covers goroutine and
// callback bodies as functions of their own. decl is the *ast.FuncDecl
// or *ast.FuncLit that owns the body.
func Functions(f *ast.File, fn func(decl ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(n, n.Body)
		}
		return true
	})
}
