// Package lockflow models mutex lock state for the CFG analyzers.
// lockbalance and guardedby share everything here: recognizing
// sync.Mutex / sync.RWMutex / sync.Locker calls, canonicalizing the
// receiver expression into a lock identity ("p.mu"), and the dataflow
// lattice that tracks which identities are held — exclusively, shared,
// or only on some paths — together with whether a deferred unlock
// covers them.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"desword/tools/analyzers/cfg"
	"desword/tools/analyzers/internal/lintutil"
)

// Kind is how a lock identity is held.
type Kind int

const (
	// None: a state entry exists (e.g. a pending deferred unlock) but
	// the lock is not held.
	None Kind = iota
	// Exclusive: held via Lock.
	Exclusive
	// Read: held via RLock — or held on all paths but with mixed
	// exclusive/read kinds, where Read is the weaker truth.
	Read
	// Maybe: held on some predecessor paths and free on others. The
	// inconsistency itself is what lockbalance reports at exit.
	Maybe
)

func (k Kind) String() string {
	switch k {
	case Exclusive:
		return "Lock"
	case Read:
		return "RLock"
	case Maybe:
		return "Lock (on some paths)"
	}
	return "none"
}

// Held reports whether the kind means the lock may be held.
func (k Kind) Held() bool { return k == Exclusive || k == Read || k == Maybe }

// A Lock is the tracked state of one lock identity.
type Lock struct {
	Kind Kind
	// Pos is the acquisition site (the first Lock/RLock that set Kind).
	Pos token.Pos
	// Deferred: a defer covering an unlock of this identity was
	// registered on this path, so being held at exit is fine.
	Deferred bool
}

// State maps lock identity → state. The zero value (nil) is "nothing
// held". States are treated as immutable; apply copies on write.
type State map[string]Lock

func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Equal reports deep equality of two states.
func Equal(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// Join merges the states of two predecessor paths. An identity held on
// one side only becomes Maybe; held on both sides with different kinds
// degrades to Read (the weaker claim); Deferred survives only when both
// paths registered the defer.
func Join(a, b State) State {
	out := make(State, len(a)+len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = joinLock(va, vb)
		} else {
			out[k] = maybe(va)
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = maybe(vb)
		}
	}
	return out
}

func joinLock(a, b Lock) Lock {
	j := Lock{Pos: a.Pos, Deferred: a.Deferred && b.Deferred}
	if j.Pos == token.NoPos {
		j.Pos = b.Pos
	}
	switch {
	case a.Kind == b.Kind:
		j.Kind = a.Kind
	case a.Kind == Maybe || b.Kind == Maybe:
		j.Kind = Maybe
	case a.Kind == None || b.Kind == None:
		j.Kind = Maybe
	default: // Exclusive vs Read on different paths: held either way
		j.Kind = Read
	}
	return j
}

func maybe(l Lock) Lock {
	if !l.Kind.Held() {
		// A non-held entry (pending defer) on one path only: drop to a
		// plain non-entry by keeping None — nothing to enforce.
		return Lock{Kind: None, Pos: l.Pos}
	}
	return Lock{Kind: Maybe, Pos: l.Pos, Deferred: l.Deferred}
}

// An Op is one lock operation found in a statement, in source order.
type Op struct {
	ID      string // canonical receiver, e.g. "p.mu"
	Read    bool   // RLock/RUnlock rather than Lock/Unlock
	Acquire bool   // Lock/RLock rather than Unlock/RUnlock
	Defer   bool   // the op sits under a defer (directly or in its func literal)
	Pos     token.Pos
}

// lockMethods maps the sync method names we track.
var lockMethods = map[string]struct{ read, acquire bool }{
	"Lock":    {false, true},
	"Unlock":  {false, false},
	"RLock":   {true, true},
	"RUnlock": {true, false},
}

// Ops extracts the lock operations of one statement in source order.
// Function literals are skipped — their bodies run at another time and
// are analyzed as functions of their own — except the immediate literal
// of a defer statement, whose operations are recorded as deferred.
func Ops(info *types.Info, stmt ast.Stmt) []Op {
	var out []Op
	if d, ok := stmt.(*ast.DeferStmt); ok {
		if op, ok := callOp(info, d.Call); ok {
			op.Defer = true
			return []Op{op}
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			lintutil.InspectNoFuncLit(lit.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := callOp(info, call); ok {
						op.Defer = true
						out = append(out, op)
					}
				}
			})
		}
		return out
	}
	lintutil.InspectLeaf(stmt, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := callOp(info, call); ok {
				out = append(out, op)
			}
		}
	})
	return out
}

// callOp recognizes one mu.Lock()-shaped call.
func callOp(info *types.Info, call *ast.CallExpr) (Op, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	m, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return Op{}, false
	}
	fn := lintutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Op{}, false
	}
	return Op{ID: types.ExprString(sel.X), Read: m.read, Acquire: m.acquire, Pos: call.Pos()}, true
}

// Apply folds one operation into a state, returning the new state and
// the identity's prior entry (for double-lock reporting by the caller).
func Apply(st State, op Op) (State, Lock) {
	prev := st[op.ID]
	out := st.clone()
	switch {
	case op.Defer && !op.Acquire:
		// defer mu.Unlock(): mark the identity covered at exit. The
		// entry survives even when nothing is held yet — the matching
		// Lock may follow the defer on this path.
		cur := prev
		cur.Deferred = true
		out[op.ID] = cur
	case op.Defer && op.Acquire:
		// defer mu.Lock() is pathological; ignore rather than model.
	case op.Acquire:
		kind := Exclusive
		if op.Read {
			kind = Read
		}
		out[op.ID] = Lock{Kind: kind, Pos: op.Pos, Deferred: prev.Deferred}
	default: // plain unlock
		if prev.Deferred {
			out[op.ID] = Lock{Kind: None, Pos: token.NoPos, Deferred: true}
		} else {
			delete(out, op.ID)
		}
	}
	return out, prev
}

// Transfer applies every lock operation of a block in order. It is the
// Problem.Transfer both analyzers hand to cfg.Forward.
func Transfer(info *types.Info) func(b *cfg.Block, in State) State {
	return func(b *cfg.Block, in State) State {
		st := in
		for _, stmt := range b.Stmts {
			for _, op := range Ops(info, stmt) {
				st, _ = Apply(st, op)
			}
		}
		return st
	}
}

// Analyze runs the lock-state dataflow over one function body and
// returns the graph plus the fixpoint facts. entry seeds the locks
// assumed held on function entry (nil for none) — how guardedby models
// caller-holds-the-lock helpers.
func Analyze(info *types.Info, body *ast.BlockStmt, entry State) (*cfg.Graph, *cfg.Result[State]) {
	g := cfg.New(body)
	res := cfg.Forward(g, cfg.Problem[State]{
		Entry:    entry,
		Transfer: Transfer(info),
		Join:     Join,
		Equal:    Equal,
	})
	return g, res
}
