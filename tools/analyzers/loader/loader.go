// Package loader type-checks the packages of a Go module without
// golang.org/x/tools/go/packages: it shells out to `go list -export` for
// package metadata and compiled export data, parses the source files, and
// runs the stdlib type checker with a gc-export-data importer. That keeps
// desword-vet fully offline — the only external dependency is the go
// toolchain already required to build the repo.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Standard   bool
	ForTest    string
	Error      *struct{ Err string }
}

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path      string // import path as the analyzers see it (no test-variant suffix)
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds soft type-checking problems. Analysis still runs —
	// export-data gaps in test variants must not hide findings — but
	// drivers surface them when analysis of the package reports nothing.
	TypeErrors []error
}

// Load lists patterns in dir (module root), including test variants, and
// returns the type-checked module-local packages. Synthesized test mains
// (".test" packages) are skipped; the test-augmented variant of a package
// replaces its plain form so test files are analyzed exactly once.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-test", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	var all []*listPackage
	exports := make(map[string]string) // ImportPath (incl. variant suffix) → export file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		all = append(all, &p)
	}

	modulePath, err := currentModule(dir)
	if err != nil {
		return nil, err
	}

	// Pick analysis targets: module-local, not a synthesized test main.
	// When both "pkg" and "pkg [pkg.test]" are listed, keep the augmented
	// variant — its GoFiles are a superset including the in-package tests.
	targets := make(map[string]*listPackage)
	for _, p := range all {
		if p.Standard || p.Module == nil || p.Module.Path != modulePath {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") || len(p.GoFiles)+len(p.CgoFiles) == 0 {
			continue
		}
		key := basePath(p.ImportPath)
		if prev, ok := targets[key]; ok {
			// Prefer the test-augmented variant over the plain package.
			if prev.ForTest != "" && p.ForTest == "" {
				continue
			}
		}
		targets[key] = p
	}

	var pkgs []*Package
	for _, p := range sortedTargets(targets) {
		pkg, err := check(p, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func sortedTargets(targets map[string]*listPackage) []*listPackage {
	keys := make([]string, 0, len(targets))
	for k := range targets {
		keys = append(keys, k)
	}
	// Deterministic analysis order → deterministic diagnostic order.
	sort.Strings(keys)
	out := make([]*listPackage, 0, len(keys))
	for _, k := range keys {
		out = append(out, targets[k])
	}
	return out
}

// basePath strips the " [pkg.test]" variant suffix go list -test appends.
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func currentModule(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// check parses and type-checks one listed package against the export data
// of its dependencies.
func check(p *listPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer:    ExportImporter(fset, exports, p.ImportMap),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewInfo()
	tpkg, _ := conf.Check(basePath(p.ImportPath), fset, files, info)
	return &Package{
		Path:       basePath(p.ImportPath),
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		TypeErrors: typeErrs,
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter returns a types.Importer that resolves imports through
// importMap (vendor/test-variant indirection) and reads gc export data
// files produced by `go list -export`. Each call returns a fresh importer
// with its own package cache: test variants of the same import path carry
// different type identities, so caches must not be shared across targets.
func ExportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		eff := path
		if m, ok := importMap[path]; ok {
			eff = m
		}
		file, ok := exports[eff]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (as %q)", path, eff)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
