package cfg

// This file is the forward dataflow half of the package: a worklist
// fixpoint over the block graph, parameterized by the client's fact type.
// The analyzers' lattices are tiny (lock states, closed-channel sets), so
// the engine optimizes for clarity over asymptotics: facts are joined
// per-edge and blocks re-queue until their input stabilizes. Termination
// is the client's obligation (a finite lattice and a monotone join); a
// generous iteration cap turns a broken lattice into a silent stop
// instead of a hung analyzer.

// A Problem describes one forward dataflow analysis over a Graph.
type Problem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Transfer applies one block's statements to the incoming fact and
	// returns the outgoing fact. It must not mutate in.
	Transfer func(b *Block, in F) F
	// Join merges two facts at a control-flow merge. It must not mutate
	// its operands.
	Join func(a, b F) F
	// Equal reports fact equality; the fixpoint stops when every
	// block's input fact stops changing.
	Equal func(a, b F) bool
}

// Result holds the fixpoint facts of one analysis.
type Result[F any] struct {
	// In and Out are the per-block facts; indexes follow Block.Index.
	// Unreachable blocks keep the zero fact and Seen[i] == false.
	In, Out []F
	Seen    []bool
}

// Forward runs the problem to fixpoint and returns the per-block facts.
func Forward[F any](g *Graph, p Problem[F]) *Result[F] {
	n := len(g.Blocks)
	res := &Result[F]{In: make([]F, n), Out: make([]F, n), Seen: make([]bool, n)}
	res.In[g.Entry.Index] = p.Entry
	res.Seen[g.Entry.Index] = true

	work := []*Block{g.Entry}
	queued := make([]bool, n)
	queued[g.Entry.Index] = true
	// Cap: every block may be revisited once per lattice step; 4·|B|·32
	// covers any lattice an analyzer here plausibly builds.
	for steps := 0; len(work) > 0 && steps < 128*n+1024; steps++ {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := p.Transfer(b, res.In[b.Index])
		res.Out[b.Index] = out
		for _, s := range b.Succs {
			var next F
			if res.Seen[s.Index] {
				next = p.Join(res.In[s.Index], out)
			} else {
				next = out
			}
			if !res.Seen[s.Index] || !p.Equal(res.In[s.Index], next) {
				res.In[s.Index] = next
				res.Seen[s.Index] = true
				if !queued[s.Index] {
					work = append(work, s)
					queued[s.Index] = true
				}
			}
		}
	}
	return res
}
