// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and offers a small forward dataflow engine on top of
// them. It is the stdlib-only substrate the concurrency-discipline
// analyzers (lockbalance, guardedby, goroutinelife, sendclosed) share:
// where the syntactic passes inspect one node at a time, these need to
// reason about *paths* — "is the mutex released on every way out of this
// function", "is this send reachable after that close" — which takes
// basic blocks and a fixpoint.
//
// The graph is deliberately simple. Blocks hold leaf statements
// (assignments, calls, sends, defers, returns, ...); structured control
// statements (if/for/switch/select) dissolve into edges, except
// *ast.RangeStmt, which lands in its loop-head block because it also
// assigns the iteration variables. Conditions are recorded on the block
// that evaluates them. Every function has one Entry and one synthetic
// Exit; returns, panics and terminating calls (os.Exit, log.Fatal,
// runtime.Goexit, testing Fatal/Skip) edge to Exit with the kind of
// departure recorded, so analyzers can treat a panic path differently
// from a normal return.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ExitKind says how control leaves a block that edges to Exit.
type ExitKind int

const (
	// ExitNone: the block does not edge to Exit.
	ExitNone ExitKind = iota
	// ExitReturn: an explicit return statement.
	ExitReturn
	// ExitFall: control falls off the end of the function body.
	ExitFall
	// ExitPanic: a panic or terminating call (os.Exit, log.Fatal, ...).
	ExitPanic
)

// A Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	// Index is the block's position in Graph.Blocks; Entry is 0.
	Index int
	// Kind labels why the block exists ("entry", "exit", "if.then",
	// "for.head", "select.comm", ...) for tests and -debug dumps.
	Kind string
	// Stmts are the leaf statements executed in order. A RangeStmt
	// appears in its loop-head block; other control statements dissolve
	// into edges.
	Stmts []ast.Stmt
	// Cond is the condition evaluated at the end of the block, when the
	// block branches on one (if/for conditions, switch tags).
	Cond ast.Expr
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Exit records how this block reaches the synthetic Exit block, if
	// it does.
	Exit ExitKind
	// End is the position an analyzer should anchor an "at function
	// exit" diagnostic to for this block: the return statement, the
	// terminating call, or the body's closing brace on fall-off.
	End token.Pos
}

// A Graph is the CFG of one function body.
type Graph struct {
	// Blocks holds every block, Entry first. Unreachable blocks (code
	// after return/goto) are retained but excluded from Reachable.
	Blocks []*Block
	// Entry is the function's entry block, Exit the synthetic exit all
	// departures converge on. Exit holds no statements.
	Entry, Exit *Block
}

// builder carries the per-function construction state.
type builder struct {
	g   *Graph
	cur *Block
	// breaks/continues map the innermost enclosing targets; labeled
	// variants are looked up in labels.
	breaks, continues []*Block
	// labels maps a label name to its head block (for goto/labeled
	// break/continue). Forward gotos are patched once the label is seen.
	labels       map[string]*Block
	labelBreak   map[string]*Block // break <label> target (statement after)
	labelCont    map[string]*Block // continue <label> target (loop head)
	pendingGotos map[string][]*Block
	// pendingLabel is set by buildLabeled so the next pushLoop mirrors
	// its targets under the label; contIsLoop tracks whether each pushed
	// frame registered a continue target (switch/select do not).
	pendingLabel string
	contIsLoop   []bool
	end          token.Pos // closing brace of the function body
}

// New builds the CFG of one function body. body may be nil (a function
// declared without a body); the graph then has only Entry and Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}, labelBreak: map[string]*Block{}, labelCont: map[string]*Block{}, pendingGotos: map[string][]*Block{}}
	entry := b.newBlock("entry")
	g.Entry = entry
	b.cur = entry
	if body != nil {
		b.end = body.Rbrace
		b.stmtList(body.List)
	}
	// Exit is created last so test dumps read top-down, but every edge
	// recorded during the walk targets it through b.exitEdge's deferred
	// list — simplest is to create it now and move it to the end.
	exit := b.newBlock("exit")
	g.Exit = exit
	// Fall off the end of the body.
	if b.cur != nil && !b.terminated(b.cur) {
		b.cur.Exit = ExitFall
		b.cur.End = b.end
		b.edge(b.cur, exit)
	}
	// Departures recorded during the walk now get their Exit edges.
	for _, blk := range g.Blocks {
		if blk.Exit != ExitNone && blk != exit && !hasSucc(blk, exit) {
			b.edge(blk, exit)
		}
	}
	// Unresolved gotos (labels that never appeared — broken code) fall
	// through to exit so the graph stays connected.
	for _, srcs := range b.pendingGotos {
		for _, src := range srcs {
			b.edge(src, exit)
		}
	}
	return g
}

func hasSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// terminated reports whether blk already departed (return/panic/branch):
// no fall-through edge should leave it.
func (b *builder) terminated(blk *Block) bool {
	return blk.Exit != ExitNone || blk.Kind == "dead"
}

// startBlock begins a new block and makes it current, fall-through
// linking it to the previous current block.
func (b *builder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil && !b.terminated(b.cur) {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		condBlk := b.cur
		condBlk.Cond = s.Cond
		after := b.newBlock("if.after")
		then := b.newBlock("if.then")
		b.edge(condBlk, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if !b.terminated(b.cur) {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(condBlk, els)
			b.cur = els
			b.stmt(s.Else)
			if !b.terminated(b.cur) {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock("for.head")
		head.Cond = s.Cond
		after := b.newBlock("for.after")
		body := b.newBlock("for.body")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			b.edge(post, head)
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmtList(s.Body.List)
		if !b.terminated(b.cur) {
			b.edge(b.cur, post)
		}
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		head := b.startBlock("range.head")
		head.Stmts = append(head.Stmts, s) // carries the iteration assignment
		after := b.newBlock("range.after")
		body := b.newBlock("range.body")
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		if !b.terminated(b.cur) {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(s.Tag, s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		// The assign (x := y.(type)) evaluates in the dispatch block.
		if s.Assign != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Assign)
		}
		b.switchBody(nil, s.Body.List)

	case *ast.SelectStmt:
		dispatch := b.cur
		after := b.newBlock("select.after")
		hasDefault := false
		b.pushLoop(after, nil) // break inside select targets after
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.comm")
			b.edge(dispatch, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			if !b.terminated(b.cur) {
				b.edge(b.cur, after)
			}
		}
		b.popLoop()
		// A select with no cases blocks forever; with cases, control only
		// continues through one of them, so no dispatch→after edge. The
		// hasDefault distinction matters only for would-block analyses,
		// which can recover it from the comm blocks.
		_ = hasDefault
		if len(s.Body.List) == 0 {
			dispatch.Exit = ExitPanic // blocks forever: no normal exit
			dispatch.End = s.Pos()
		}
		b.cur = after

	case *ast.LabeledStmt:
		label := s.Label.Name
		head := b.startBlock("label." + label)
		b.labels[label] = head
		for _, src := range b.pendingGotos[label] {
			b.edge(src, head)
		}
		delete(b.pendingGotos, label)
		// Labeled loops/switches register their break/continue targets
		// under the label while building the inner statement.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.buildLabeled(label, inner)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			if s.Label == nil {
				// Broken source (error-tolerant parse): no target.
				b.cur = b.newBlock("dead")
				return
			}
			name := s.Label.Name
			if tgt, ok := b.labels[name]; ok {
				b.edge(b.cur, tgt)
			} else {
				b.pendingGotos[name] = append(b.pendingGotos[name], b.cur)
			}
			b.cur = b.newBlock("dead")
		case token.BREAK:
			tgt := b.breakTarget(s.Label)
			b.edge(b.cur, tgt)
			b.cur = b.newBlock("dead")
		case token.CONTINUE:
			tgt := b.continueTarget(s.Label)
			b.edge(b.cur, tgt)
			b.cur = b.newBlock("dead")
		case token.FALLTHROUGH:
			// Handled structurally by switchBody; nothing to record here.
		}

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.cur.Exit = ExitReturn
		b.cur.End = s.Pos()
		b.cur = b.newBlock("dead")

	case *ast.ExprStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if call, ok := s.X.(*ast.CallExpr); ok && Terminates(call) {
			b.cur.Exit = ExitPanic
			b.cur.End = s.Pos()
			b.cur = b.newBlock("dead")
		}

	default:
		// Leaf statements: assignments, declarations, sends, go, defer,
		// incdec, empty.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// switchBody lowers (type-)switch case clauses: dispatch fans out to every
// case, fallthrough chains a case body into the next one, and a missing
// default adds the dispatch→after edge.
func (b *builder) switchBody(tag ast.Expr, clauses []ast.Stmt) {
	dispatch := b.cur
	dispatch.Cond = tag
	after := b.newBlock("switch.after")
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
	}
	b.pushLoop(after, nil) // break inside a switch targets after
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(dispatch, blocks[i])
		b.cur = blocks[i]
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else if !b.terminated(b.cur) {
			b.edge(b.cur, after)
		}
	}
	b.popLoop()
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.cur = after
}

// buildLabeled builds a loop/switch/select with label-targeted
// break/continue registered. It re-dispatches into stmt after recording
// the label targets, which stmt's loop handling will have pushed by the
// time a branch statement inside the body looks them up — so the
// registration happens through a small handshake: stmt pushes the
// unlabeled targets, and we mirror the top of the stack under the label.
func (b *builder) buildLabeled(label string, s ast.Stmt) {
	b.pendingLabel = label
	b.stmt(s)
	b.pendingLabel = ""
}

// pushLoop records the innermost break/continue targets. cont is nil for
// switch/select, where continue still refers to the enclosing loop.
func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	if cont != nil {
		b.continues = append(b.continues, cont)
	}
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		if cont != nil {
			b.labelCont[b.pendingLabel] = cont
		}
		b.pendingLabel = ""
	}
	b.contIsLoop = append(b.contIsLoop, cont != nil)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if b.contIsLoop[len(b.contIsLoop)-1] {
		b.continues = b.continues[:len(b.continues)-1]
	}
	b.contIsLoop = b.contIsLoop[:len(b.contIsLoop)-1]
}

func (b *builder) breakTarget(label *ast.Ident) *Block {
	if label != nil {
		if tgt, ok := b.labelBreak[label.Name]; ok {
			return tgt
		}
	}
	if n := len(b.breaks); n > 0 {
		return b.breaks[n-1]
	}
	return b.g.Exit
}

func (b *builder) continueTarget(label *ast.Ident) *Block {
	if label != nil {
		if tgt, ok := b.labelCont[label.Name]; ok {
			return tgt
		}
	}
	if n := len(b.continues); n > 0 {
		return b.continues[n-1]
	}
	return b.g.Exit
}

// Terminates reports whether call never returns, judged syntactically:
// the builtin panic, os.Exit, log.Fatal*, runtime.Goexit, and the
// testing Fatal/Fatalf/FailNow/Skip* family. Syntactic matching keeps the
// builder independent of type information; the rare same-named local
// function costs an edge to Exit, never a missed path.
func Terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// Reachable returns the blocks reachable from Entry, in Blocks order.
// Analyzers iterate these; diagnostics in dead code help nobody.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the graph compactly for tests: one line per reachable
// block, "i:kind[nStmts] -> succs".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Reachable() {
		fmt.Fprintf(&sb, "%d:%s[%d]", b.Index, b.Kind, len(b.Stmts))
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
