package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of func f and returns its CFG.
func parseBody(t testing.TB, src string) (*Graph, *ast.FuncDecl) {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body), fd
}

// TestGraphShapes pins the block/edge structure of every control
// construct the builder lowers. The golden strings come from
// Graph.String(): "index:kind[stmtCount] -> succ indexes", reachable
// blocks only, entry first.
func TestGraphShapes(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{
			name: "straightline",
			src:  "x := 1\nx++\n_ = x",
			want: "0:entry[3] -> 1\n1:exit[0]\n",
		},
		{
			name: "if",
			src:  "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x",
			want: "0:entry[1] -> 2 1\n1:if.after[1] -> 3\n2:if.then[1] -> 1\n3:exit[0]\n",
		},
		{
			name: "ifelse_return",
			src:  "if true {\n\treturn\n} else {\n\t_ = 1\n}\n_ = 2",
			want: "0:entry[0] -> 2 4\n1:if.after[1] -> 5\n2:if.then[1] -> 5\n4:if.else[1] -> 1\n5:exit[0]\n",
		},
		{
			name: "for_full",
			src:  "for i := 0; i < 3; i++ {\n\t_ = i\n}",
			want: "0:entry[1] -> 1\n1:for.head[0] -> 3 2\n2:for.after[0] -> 5\n3:for.body[1] -> 4\n4:for.post[1] -> 1\n5:exit[0]\n",
		},
		{
			name: "for_break_continue",
			src:  "for {\n\tif true {\n\t\tbreak\n\t}\n\tcontinue\n}",
			want: "0:entry[0] -> 1\n1:for.head[0] -> 3\n2:for.after[0] -> 8\n3:for.body[0] -> 5 4\n4:if.after[0] -> 1\n5:if.then[0] -> 2\n8:exit[0]\n",
		},
		{
			name: "range",
			src:  "for i := range 3 {\n\t_ = i\n}",
			want: "0:entry[0] -> 1\n1:range.head[1] -> 3 2\n2:range.after[0] -> 4\n3:range.body[1] -> 1\n4:exit[0]\n",
		},
		{
			name: "switch_fallthrough_default",
			src:  "switch x := 1; x {\ncase 1:\n\t_ = 1\n\tfallthrough\ncase 2:\n\t_ = 2\ndefault:\n\t_ = 3\n}",
			want: "0:entry[1] -> 2 3 4\n1:switch.after[0] -> 5\n2:switch.case[1] -> 3\n3:switch.case[1] -> 1\n4:switch.case[1] -> 1\n5:exit[0]\n",
		},
		{
			name: "switch_no_default",
			src:  "switch 1 {\ncase 1:\n\t_ = 1\n}",
			want: "0:entry[0] -> 2 1\n1:switch.after[0] -> 3\n2:switch.case[1] -> 1\n3:exit[0]\n",
		},
		{
			name: "typeswitch",
			src:  "var v any\nswitch v.(type) {\ncase int:\n\t_ = 1\ndefault:\n}",
			want: "0:entry[2] -> 2 3\n1:switch.after[0] -> 4\n2:switch.case[1] -> 1\n3:switch.case[0] -> 1\n4:exit[0]\n",
		},
		{
			name: "select",
			src:  "ch := make(chan int)\nselect {\ncase v := <-ch:\n\t_ = v\ndefault:\n\t_ = 1\n}",
			want: "0:entry[1] -> 2 3\n1:select.after[0] -> 4\n2:select.comm[2] -> 1\n3:select.comm[1] -> 1\n4:exit[0]\n",
		},
		{
			name: "goto_backward",
			src:  "x := 0\nL:\nx++\nif x < 3 {\n\tgoto L\n}",
			want: "0:entry[1] -> 1\n1:label.L[1] -> 3 2\n2:if.after[0] -> 5\n3:if.then[0] -> 1\n5:exit[0]\n",
		},
		{
			name: "labeled_break",
			src:  "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}",
			want: "0:entry[0] -> 1\n1:label.outer[0] -> 2\n2:for.head[0] -> 4\n3:for.after[0] -> 9\n4:for.body[0] -> 5\n5:for.head[0] -> 7\n7:for.body[0] -> 3\n9:exit[0]\n",
		},
		{
			name: "labeled_continue",
			src:  "outer:\nfor {\n\tfor {\n\t\tcontinue outer\n\t}\n}",
			want: "0:entry[0] -> 1\n1:label.outer[0] -> 2\n2:for.head[0] -> 4\n4:for.body[0] -> 5\n5:for.head[0] -> 7\n7:for.body[0] -> 2\n",
		},
		{
			name: "panic_terminates",
			src:  "if true {\n\tpanic(\"x\")\n}\n_ = 1",
			want: "0:entry[0] -> 2 1\n1:if.after[1] -> 4\n2:if.then[1] -> 4\n4:exit[0]\n",
		},
		{
			name: "defer_is_leaf",
			src:  "defer func() {}()\n_ = 1",
			want: "0:entry[2] -> 1\n1:exit[0]\n",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, fd := parseBody(t, tt.src)
			if got := g.String(); got != tt.want {
				t.Errorf("graph mismatch\n--- got ---\n%s--- want ---\n%s", got, tt.want)
			}
			checkInvariants(t, g, fd)
		})
	}
}

// TestExitKinds pins how departures are classified and anchored.
func TestExitKinds(t *testing.T) {
	g, _ := parseBody(t, "if true {\n\treturn\n}\n_ = 1")
	var kinds []ExitKind
	for _, b := range g.Reachable() {
		if b.Exit != ExitNone {
			kinds = append(kinds, b.Exit)
			if !b.End.IsValid() {
				t.Errorf("block %d: exit %v with no End position", b.Index, b.Exit)
			}
		}
	}
	// Blocks list in creation order: the if.after (fall-off) block is
	// allocated before the then (return) block.
	if len(kinds) != 2 || kinds[0] != ExitFall || kinds[1] != ExitReturn {
		t.Errorf("exit kinds = %v, want [ExitFall ExitReturn]", kinds)
	}

	g, _ = parseBody(t, "panic(\"x\")")
	for _, b := range g.Reachable() {
		if len(b.Stmts) > 0 && b.Exit != ExitPanic {
			t.Errorf("panic block has exit kind %v, want ExitPanic", b.Exit)
		}
	}
}

// TestEmptyBody covers functions without a body.
func TestEmptyBody(t *testing.T) {
	g := New(nil)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("nil-body graph missing entry/exit")
	}
}

// leafCount counts the leaf statements the builder is expected to place
// into blocks, walking the same structure the builder lowers.
func leafStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	var walk func(ast.Stmt)
	walkList := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkList(s.Body.List)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkList(s.Body.List)
			if s.Post != nil {
				walk(s.Post)
			}
		case *ast.RangeStmt:
			out = append(out, s) // lands in its head block
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Assign != nil {
				out = append(out, s.Assign)
			}
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm)
				}
				walkList(cc.Body)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.BranchStmt:
			// dissolves into an edge (fallthrough) or block end
		case nil:
		default:
			out = append(out, s)
		}
	}
	walkList(body.List)
	return out
}

// checkInvariants asserts the partition property: every leaf statement
// of the source lands in exactly one block, and edges are symmetric.
func checkInvariants(t testing.TB, g *Graph, fd *ast.FuncDecl) {
	t.Helper()
	seen := make(map[ast.Stmt]int)
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			seen[s]++
		}
	}
	for _, s := range leafStmts(fd.Body) {
		if n := seen[s]; n != 1 {
			t.Errorf("statement at %v appears in %d blocks, want 1", s.Pos(), n)
		}
		delete(seen, s)
	}
	for s, n := range seen {
		if n != 1 {
			t.Errorf("block statement at %v recorded %d times", s.Pos(), n)
		}
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing back-pointer", b.Index, s.Index)
			}
		}
	}
}

// TestForwardFixpoint exercises the dataflow engine with a reaching
// "tainted" bit through a loop: taint set in the body must reach the
// after-block even though the head joins tainted and clean paths.
func TestForwardFixpoint(t *testing.T) {
	g, _ := parseBody(t, "x := 0\nfor x < 3 {\n\tx++\n}\n_ = x")
	res := Forward(g, Problem[bool]{
		Entry: false,
		Transfer: func(b *Block, in bool) bool {
			for _, s := range b.Stmts {
				if _, ok := s.(*ast.IncDecStmt); ok {
					return true
				}
			}
			return in
		},
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
	})
	if !res.Seen[g.Exit.Index] || !res.In[g.Exit.Index] {
		t.Errorf("taint did not reach exit: seen=%v in=%v", res.Seen[g.Exit.Index], res.In[g.Exit.Index])
	}
}

// FuzzStatementPartition feeds arbitrary function bodies through the
// builder and asserts the partition invariant — every leaf statement in
// exactly one block — plus edge symmetry. Parse failures are skipped;
// the corpus seeds every construct the table tests cover.
func FuzzStatementPartition(f *testing.F) {
	f.Add("x := 1\nif x > 0 {\n\tx = 2\n}")
	f.Add("for i := 0; i < 3; i++ {\n\tcontinue\n}")
	f.Add("L:\nfor {\n\tswitch 1 {\n\tcase 1:\n\t\tbreak L\n\tdefault:\n\t\tgoto L\n\t}\n}")
	f.Add("ch := make(chan int)\nselect {\ncase <-ch:\n\treturn\ndefault:\n}\nclose(ch)")
	f.Add("defer func() {\n\trecover()\n}()\npanic(1)")
	f.Add("for k, v := range map[int]int{} {\n\t_, _ = k, v\n}")
	f.Fuzz(func(t *testing.T, body string) {
		file := "package p\nfunc f() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		parsed, err := parser.ParseFile(fset, "f.go", file, 0)
		if err != nil {
			t.Skip()
		}
		fd, ok := parsed.Decls[0].(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			t.Skip()
		}
		// Reject bodies whose braces escaped the function (the wrapper
		// must hold the whole input or positions lie).
		if !strings.Contains(file[fset.Position(fd.Body.Pos()).Offset:], body[:min(len(body), 1)]) {
			t.Skip()
		}
		g := New(fd.Body)
		checkInvariants(t, g, fd)
		// Reachability must at least include entry, and String must not
		// panic or loop.
		_ = g.String()
		if len(g.Reachable()) == 0 {
			t.Fatal("no reachable blocks")
		}
	})
}
