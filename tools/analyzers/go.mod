module desword/tools/analyzers

go 1.22
