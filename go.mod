module desword

go 1.22
