// Package desword holds the repository-level benchmark suite: one testing.B
// benchmark family per table and figure of the paper's evaluation (§VI),
// mirroring the experiment index of DESIGN.md §5. The cmd/desword-bench
// harness prints the same results as formatted tables; these benchmarks give
// the raw ns/op series.
//
// Setup cost (RSA moduli, CRS trees) is shared per parameter point through
// lazily initialized fixtures, and the RSA modulus is 512 bits so the full
// sweep completes in minutes; cost *shapes* across q and h are modulus-
// independent.
package desword

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"desword/internal/baseline"
	"desword/internal/bench"
	"desword/internal/chlmr"
	"desword/internal/core"
	"desword/internal/mercurial"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/qmercurial"
	"desword/internal/reputation"
	"desword/internal/sim"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

const benchModulusBits = 512

// --- shared fixtures ---

var (
	qtmcMu   sync.Mutex
	qtmcKeys = map[int]*qmercurial.PublicKey{}

	macroMu       sync.Mutex
	macroFixtures = map[bench.QH]*macroFixture{}
)

func qtmcKey(b *testing.B, q int) *qmercurial.PublicKey {
	b.Helper()
	qtmcMu.Lock()
	defer qtmcMu.Unlock()
	if pk, ok := qtmcKeys[q]; ok {
		return pk
	}
	pk, err := qmercurial.KGen(q, 128, benchModulusBits)
	if err != nil {
		b.Fatal(err)
	}
	qtmcKeys[q] = pk
	return pk
}

type macroFixture struct {
	ps      *poc.PublicParams
	cred    poc.POC
	dpoc    *poc.DPOC
	proof   *poc.Proof
	product poc.ProductID
}

func macroFixtureFor(b *testing.B, qh bench.QH) *macroFixture {
	b.Helper()
	macroMu.Lock()
	defer macroMu.Unlock()
	if fx, ok := macroFixtures[qh]; ok {
		return fx
	}
	params := zkedb.Params{Q: qh.Q, H: qh.H, KeyBits: 128, ModulusBits: benchModulusBits}
	ps, err := poc.PSGen(params)
	if err != nil {
		b.Fatal(err)
	}
	traces := []poc.Trace{
		{Product: "bench-id-0", Data: []byte("bench trace 0")},
		{Product: "bench-id-1", Data: []byte("bench trace 1")},
	}
	cred, dpoc, err := poc.Agg(ps, "vB", traces, poc.AggOptions{ProofCacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	proof, err := dpoc.Prove(context.Background(), "bench-id-0")
	if err != nil {
		b.Fatal(err)
	}
	fx := &macroFixture{ps: ps, cred: cred, dpoc: dpoc, proof: proof, product: "bench-id-0"}
	macroFixtures[qh] = fx
	return fx
}

func vector(pk *qmercurial.PublicKey) []*big.Int {
	ms := make([]*big.Int, pk.Q())
	max := pk.VC.MaxMessage()
	for i := range ms {
		v := big.NewInt(int64(i)*104729 + 7)
		ms[i] = v.Mod(v, max)
	}
	return ms
}

// --- E1: TMC micro-benchmark (§VI.A text) ---
// The full seven-algorithm suite also lives in internal/mercurial; HCom is
// the paper's headline number ("can be completed in 34 ms in average").

func BenchmarkE1TMCHCom(b *testing.B) {
	pk := mercurial.KGen()
	m := pk.Group().HashToScalar([]byte("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.HCom(m)
	}
}

func BenchmarkE1TMCVerHOpen(b *testing.B) {
	pk := mercurial.KGen()
	c, dec := pk.HCom(pk.Group().HashToScalar([]byte("bench")))
	op := pk.HOpen(dec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pk.VerHOpen(c, op) {
			b.Fatal("verification failed")
		}
	}
}

// --- E2: Fig. 4(a) — qTMC hard-commitment algorithms vs q (linear) ---

func BenchmarkE2Fig4aQHCom(b *testing.B) {
	for _, q := range bench.PaperQs() {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			pk := qtmcKey(b, q)
			ms := vector(pk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pk.HCom(ms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE2Fig4aQHOpen(b *testing.B) {
	for _, q := range bench.PaperQs() {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			pk := qtmcKey(b, q)
			ms := vector(pk)
			_, dec, err := pk.HCom(ms)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pk.HOpen(dec, i%q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: Fig. 4(b) — qTMC soft-commitment algorithms vs q (constant) ---

func BenchmarkE3Fig4bQSCom(b *testing.B) {
	for _, q := range bench.PaperQs() {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			pk := qtmcKey(b, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pk.SCom()
			}
		})
	}
}

func BenchmarkE3Fig4bQSOpenSoft(b *testing.B) {
	for _, q := range bench.PaperQs() {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			pk := qtmcKey(b, q)
			_, dec := pk.SCom()
			m := big.NewInt(12345)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pk.SOpenSoft(dec, i%q, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: Table II — communication overhead (proof bytes, reported as a
// custom metric; size ∝ h, independent of q, own > n-own) ---

func BenchmarkE4Table2ProofSize(b *testing.B) {
	for _, qh := range bench.PaperQH() {
		b.Run(fmt.Sprintf("q=%d/h=%d", qh.Q, qh.H), func(b *testing.B) {
			fx := macroFixtureFor(b, qh)
			own, err := fx.dpoc.Prove(context.Background(), fx.product)
			if err != nil {
				b.Fatal(err)
			}
			nOwn, err := fx.dpoc.Prove(context.Background(), "bench-absent")
			if err != nil {
				b.Fatal(err)
			}
			ownSize, err := own.ZK.Size()
			if err != nil {
				b.Fatal(err)
			}
			nOwnSize, err := nOwn.ZK.Size()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ownSize), "own-proof-B")
			b.ReportMetric(float64(nOwnSize), "nown-proof-B")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := own.ZK.MarshalBinary(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Fig. 5 — ownership proof computation (gen ≫ verify at scale;
// gen grows with q, verify tracks h) ---

func BenchmarkE5Fig5ProofGen(b *testing.B) {
	for _, qh := range bench.PaperQH() {
		b.Run(fmt.Sprintf("q=%d/h=%d", qh.Q, qh.H), func(b *testing.B) {
			fx := macroFixtureFor(b, qh)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fx.dpoc.Prove(context.Background(), fx.product); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE5Fig5ProofVerify(b *testing.B) {
	for _, qh := range bench.PaperQH() {
		b.Run(fmt.Sprintf("q=%d/h=%d", qh.Q, qh.H), func(b *testing.B) {
			fx := macroFixtureFor(b, qh)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := poc.Verify(context.Background(), fx.ps, fx.cred, fx.product, fx.proof); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: §II.C strawman comparison ---

func BenchmarkE6BaselineBuildPOC(b *testing.B) {
	signer, err := baseline.NewSigner("vB")
	if err != nil {
		b.Fatal(err)
	}
	traces := make([]poc.Trace, 16)
	for i := range traces {
		traces[i] = poc.Trace{Product: poc.ProductID(fmt.Sprintf("id-%d", i)), Data: []byte("d")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signer.BuildPOC(traces); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6ZKEDBAgg(b *testing.B) {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	traces := make([]poc.Trace, 16)
	for i := range traces {
		traces[i] = poc.Trace{Product: poc.ProductID(fmt.Sprintf("id-%d", i)), Data: []byte("d")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := poc.Agg(ps, "vB", traces, poc.AggOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Fig. 3 quantified — incentive simulation ---

func BenchmarkE7IncentiveEpochs(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Trials = 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: end-to-end path query over TCP ---

var (
	e2eOnce   sync.Once
	e2eClient *node.ProxyClient
	e2eErr    error
)

func e2eSetup() {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		e2eErr = err
		return
	}
	g, parts := supplychain.LineGraph(4)
	members := make(map[poc.ParticipantID]*core.Member, 4)
	for id, p := range parts {
		members[id] = core.NewMember(ps, p)
	}
	tags, err := supplychain.MintTags("e2e", 1)
	if err != nil {
		e2eErr = err
		return
	}
	dist, err := core.RunDistribution(ps, g, members, "p0", tags, nil,
		supplychain.FirstChildSplitter, "bench-e2e")
	if err != nil {
		e2eErr = err
		return
	}
	dir := make(map[poc.ParticipantID]string, 4)
	for id, m := range members {
		srv, err := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if err != nil {
			e2eErr = err
			return
		}
		dir[id] = srv.Addr()
	}
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), node.DirectoryResolver(dir).Resolver())
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		e2eErr = err
		return
	}
	client := node.NewProxyClient(proxySrv.Addr())
	if err := client.RegisterList(context.Background(), "bench-e2e", dist.List); err != nil {
		e2eErr = err
		return
	}
	e2eClient = client
}

func BenchmarkE8EndToEndGoodQuery(b *testing.B) {
	e2eOnce.Do(e2eSetup)
	if e2eErr != nil {
		b.Fatal(e2eErr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := e2eClient.QueryPath(context.Background(), "e2e1", core.Good)
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Path) != 4 {
			b.Fatalf("path length %d", len(result.Path))
		}
	}
}

func BenchmarkE8EndToEndBadQuery(b *testing.B) {
	e2eOnce.Do(e2eSetup)
	if e2eErr != nil {
		b.Fatal(e2eErr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := e2eClient.QueryPath(context.Background(), "e2e1", core.Bad)
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Path) != 4 {
			b.Fatalf("path length %d", len(result.Path))
		}
	}
}

// --- A4: plain-TMC (CHLMR) tree vs the paper's qTMC tree ---

func BenchmarkA4CHLMRProofGen(b *testing.B) {
	for _, qh := range []bench.QH{{Q: 8, H: 43}, {Q: 128, H: 19}} {
		b.Run(fmt.Sprintf("q=%d/h=%d", qh.Q, qh.H), func(b *testing.B) {
			crs, err := chlmr.CRSGen(chlmr.Params{Q: qh.Q, H: qh.H, KeyBits: 128})
			if err != nil {
				b.Fatal(err)
			}
			_, dec, err := crs.Commit(map[string][]byte{"k": []byte("v")})
			if err != nil {
				b.Fatal(err)
			}
			proof, err := dec.Prove("k")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(proof.Size()), "own-proof-B")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Prove("k"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A1: proof generation flat across database sizes ---

func BenchmarkA1ProofGenByDBSize(b *testing.B) {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("traces=%d", n), func(b *testing.B) {
			traces := make([]poc.Trace, n)
			for i := range traces {
				traces[i] = poc.Trace{Product: poc.ProductID(fmt.Sprintf("t-%d", i)), Data: []byte("d")}
			}
			_, dpoc, err := poc.Agg(ps, "vB", traces, poc.AggOptions{ProofCacheSize: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dpoc.Prove(context.Background(), traces[i%n].Product); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Proof cache: cold vs warm ownership proofs ---

// BenchmarkProve measures proof generation with the DPOC proof cache out of
// the loop (cold: every call recomputes the mercurial openings) and in the
// loop (warm: repeats are served from the single-flight LRU). The warm path
// is expected to be orders of magnitude faster — the gap is the win the
// cache buys a participant answering repeated demands for a hot product.
func BenchmarkProve(b *testing.B) {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		b.Fatal(err)
	}
	traces := []poc.Trace{{Product: "hot-product", Data: []byte("hot trace")}}

	b.Run("cold", func(b *testing.B) {
		_, dpoc, err := poc.Agg(ps, "vB", traces, poc.AggOptions{ProofCacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dpoc.Prove(context.Background(), "hot-product"); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		_, dpoc, err := poc.Agg(ps, "vB", traces, poc.AggOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dpoc.Prove(context.Background(), "hot-product"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dpoc.Prove(context.Background(), "hot-product"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
