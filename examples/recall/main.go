// Targeted product recall over a real TCP deployment, with multiple
// distribution tasks (§IV.D): two production lots flow through the same
// chain from different initial participants; the proxy keeps one POC-queue
// per initial participant and locates the right lot for each queried
// product before recalling everything downstream of the failure point.
//
// All parties — the proxy and every participant — run as TCP servers on
// localhost, exchanging the same wire messages a distributed deployment
// would.
//
//	go run ./examples/recall [-timeout 5s] [-retries 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// clientCfg carries the shared transport flags (-timeout, -retries, ...) so
// the example's client is tuned the same way the cmd binaries are.
var clientCfg node.ClientConfig

func main() {
	clientCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recall:", err)
		os.Exit(1)
	}
}

func run() error {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		return err
	}
	graph := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*core.Member)
	for _, v := range graph.Participants() {
		members[v] = core.NewMember(ps, supplychain.NewParticipant(v))
	}

	// Two distribution tasks: lot A from v0, lot B from v1 (the two initial
	// participants of Figure 1).
	tagsA, err := supplychain.MintTags("lotA-", 6)
	if err != nil {
		return err
	}
	distA, err := core.RunDistribution(ps, graph, members, "v0", tagsA, nil,
		supplychain.RoundRobinSplitter, "task-lotA")
	if err != nil {
		return err
	}
	tagsB, err := supplychain.MintTags("lotB-", 6)
	if err != nil {
		return err
	}
	distB, err := core.RunDistribution(ps, graph, members, "v1", tagsB, nil,
		supplychain.RoundRobinSplitter, "task-lotB")
	if err != nil {
		return err
	}
	fmt.Println("① two distribution tasks executed: lotA from v0, lotB from v1")

	// Deploy every participant as a TCP server and the proxy on top.
	directory := make(map[poc.ParticipantID]string, len(members))
	for id, m := range members {
		srv, err := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if err != nil {
			return err
		}
		defer closeQuietly(srv)
		directory[id] = srv.Addr()
	}
	resolver := node.DirectoryResolver(directory)
	defer closeQuietly(resolver)
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver.Resolver())
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		return err
	}
	defer closeQuietly(proxySrv)
	client := node.NewProxyClient(proxySrv.Addr(), clientCfg.Options()...)
	defer closeQuietly(client)
	fmt.Printf("② %d participant servers + proxy server live on localhost\n", len(directory))

	// Each initial participant submits its task's POC list over the wire;
	// the proxy adds (ps, POC_v̄) to the submitting initial's POC-queue.
	if err := client.RegisterList(context.Background(), distA.TaskID, distA.List); err != nil {
		return err
	}
	if err := client.RegisterList(context.Background(), distB.TaskID, distB.List); err != nil {
		return err
	}
	fmt.Println("③ both POC lists registered; POC-queues populated for v0 and v1")

	// A defect report names lotB-2. The proxy must first discover which lot
	// (task) the product belongs to by sweeping the initial participants'
	// POC-queues, then walk that lot's POC list.
	const defective = poc.ProductID("lotB-2")
	result, err := client.QueryPath(context.Background(), defective, core.Bad)
	if err != nil {
		return err
	}
	if result.TaskID != distB.TaskID {
		return fmt.Errorf("product resolved to %q, want %q", result.TaskID, distB.TaskID)
	}
	fmt.Printf("④ %s located in %s via POC-queues; verified path %v\n", defective, result.TaskID, result.Path)
	failurePoint := result.Path[len(result.Path)-1]
	fmt.Printf("⑤ failure point: %s (last processor); recalling lotB products that reached it\n", failurePoint)

	recalled := []poc.ProductID{}
	for id := range distB.Ground.Paths {
		if id == defective {
			continue
		}
		res, err := client.QueryPath(context.Background(), id, core.Good)
		if err != nil {
			return err
		}
		for _, v := range res.Path {
			if v == failurePoint {
				recalled = append(recalled, id)
				break
			}
		}
	}
	fmt.Printf("   recall notice issued for %d products: %v\n", len(recalled), recalled)

	// Confirm lot isolation: lotA products resolve to task-lotA and are
	// unaffected.
	probe := poc.ProductID("lotA-1")
	res, err := client.QueryPath(context.Background(), probe, core.Good)
	if err != nil {
		return err
	}
	if res.TaskID != distA.TaskID {
		return fmt.Errorf("lot isolation broken: %s resolved to %q", probe, res.TaskID)
	}
	fmt.Printf("⑥ lot isolation confirmed: %s resolves to %s, untouched by the recall\n", probe, res.TaskID)

	scores, err := client.Scores(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("⑦ public reputation table now holds %d entries (fetched over the wire)\n", len(scores))
	return nil
}

type closer interface{ Close() error }

func closeQuietly(c closer) {
	if err := c.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "recall: closing server:", err)
	}
}
