// Counterfeit detection — the pharmaceutical scenario of the paper's
// introduction: ~10% of the drug market is counterfeit, and regulators need
// the complete, verifiable history of every package.
//
// Two counterfeiting patterns are exercised:
//
//  1. An off-chain counterfeit: a product id that no initial participant can
//     produce an ownership proof for. The proxy's POC-queue sweep comes back
//     empty — no legitimate origin exists.
//
//  2. A reputation-farming counterfeit: a participant claims (with a forged
//     proof) to have processed a genuine, good product, hoping to collect
//     its positive score. ZK-EDB soundness kills the claim.
//
//     go run ./examples/counterfeit
package main

import (
	"context"
	"fmt"
	"os"

	"desword/internal/adversary"
	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "counterfeit:", err)
		os.Exit(1)
	}
}

func run() error {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		return err
	}

	// A pharmaceutical chain: manufacturer → wholesaler → two pharmacies.
	graph := supplychain.NewGraph()
	for _, v := range []supplychain.ParticipantID{"manufacturer", "wholesaler", "pharmacyA", "pharmacyB"} {
		graph.AddParticipant(v)
	}
	for _, e := range [][2]supplychain.ParticipantID{
		{"manufacturer", "wholesaler"}, {"wholesaler", "pharmacyA"}, {"wholesaler", "pharmacyB"},
	} {
		if err := graph.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	members := make(map[poc.ParticipantID]*core.Member)
	for _, v := range graph.Participants() {
		members[v] = core.NewMember(ps, supplychain.NewParticipant(v))
	}
	tags, err := supplychain.MintTags("NDC-0591-", 6)
	if err != nil {
		return err
	}
	dist, err := core.RunDistribution(ps, graph, members, "manufacturer", tags,
		func(v supplychain.ParticipantID, id supplychain.ProductID) []byte {
			return []byte(fmt.Sprintf("site=%s;lot=L42;drug=%s;gmp=pass", v, id))
		},
		supplychain.RoundRobinSplitter, "drug-lot-L42")
	if err != nil {
		return err
	}

	// pharmacyB will try to farm reputation by claiming it also processed a
	// product that really went to pharmacyA.
	var targetID poc.ProductID
	for id, path := range dist.Ground.Paths {
		if path[len(path)-1] == "pharmacyA" {
			targetID = id
			break
		}
	}
	farmer := adversary.NewDishonest(members["pharmacyB"])
	farmer.FakeProcessing[targetID] = true
	resolver := func(v poc.ParticipantID) (core.Responder, error) {
		if v == "pharmacyB" {
			return farmer, nil
		}
		return members[v], nil
	}
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList(dist.TaskID, dist.List); err != nil {
		return err
	}

	// Scenario 1: a package surfaces in the market with an id the chain
	// never issued. No initial participant can prove ownership, so no origin
	// exists: counterfeit.
	fmt.Println("① verifying a suspicious package: id NDC-FAKE-999")
	res, err := proxy.QueryPath(context.Background(), "NDC-FAKE-999", core.Good)
	if err != nil {
		return err
	}
	if len(res.Path) == 0 {
		fmt.Println("   no participant holds an ownership proof → COUNTERFEIT (no legitimate origin)")
	} else {
		return fmt.Errorf("counterfeit unexpectedly authenticated: %v", res.Path)
	}

	// Scenario 2: verify a genuine package end to end.
	fmt.Printf("② verifying a genuine package: %s\n", targetID)
	res, err = proxy.QueryPath(context.Background(), targetID, core.Good)
	if err != nil {
		return err
	}
	fmt.Printf("   authenticated path: %v (complete=%v)\n", res.Path, res.Complete)
	for _, v := range res.Path {
		fmt.Printf("   %-13s %q\n", v, res.Traces[v].Data)
	}

	// The farmer is never reached on the true path in this query (it is not
	// a recorded child of pharmacyA), so probe it directly the way the proxy
	// audits claims: ask it to prove processing.
	fmt.Println("③ pharmacyB claims it also handled the package; the proxy audits the claim")
	credential, err := dist.List.POC("pharmacyB")
	if err != nil {
		return err
	}
	resp, err := farmer.Query(context.Background(), dist.TaskID, targetID, core.Good)
	if err != nil {
		return err
	}
	if resp.Claim != core.ClaimProcessed {
		return fmt.Errorf("fixture broken: farmer should claim processing")
	}
	if _, err := poc.Verify(context.Background(), ps, credential, targetID, resp.Proof); err != nil {
		fmt.Printf("   forged ownership proof REJECTED: %v\n", err)
	} else {
		return fmt.Errorf("forged proof unexpectedly verified")
	}

	fmt.Println("④ result: counterfeit flagged, genuine package authenticated, forged claim rejected")
	return nil
}
