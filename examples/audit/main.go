// Customer-side reputation audit. DE-Sword's incentive only binds because
// reputation scores "can be publicly accessed by customers" (§II.C) — which
// presumes customers need not take the proxy's database on faith. This
// example shows the full trust chain: a deployment runs queries, a customer
// fetches the tamper-evident score history over TCP (the client verifies the
// hash chain before returning it), replays the scores independently — and
// then demonstrates that a doctored history is caught.
//
//	go run ./examples/audit [-timeout 5s] [-retries 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

// clientCfg carries the shared transport flags (-timeout, -retries, ...) so
// the example's client is tuned the same way the cmd binaries are.
var clientCfg node.ClientConfig

func main() {
	clientCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(1)
	}
}

func run() error {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		return err
	}
	graph := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*core.Member)
	for _, v := range graph.Participants() {
		members[v] = core.NewMember(ps, supplychain.NewParticipant(v))
	}
	tags, err := supplychain.MintTags("unit", 6)
	if err != nil {
		return err
	}
	dist, err := core.RunDistribution(ps, graph, members, "v0", tags, nil,
		supplychain.RoundRobinSplitter, "audited-lot")
	if err != nil {
		return err
	}

	directory := make(map[poc.ParticipantID]string)
	for id, m := range members {
		srv, err := node.ServeParticipant(context.Background(), "127.0.0.1:0", m)
		if err != nil {
			return err
		}
		defer closeQuietly(srv)
		directory[id] = srv.Addr()
	}
	resolver := node.DirectoryResolver(directory)
	defer closeQuietly(resolver)
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver.Resolver())
	proxySrv, err := node.ServeProxy(context.Background(), "127.0.0.1:0", proxy)
	if err != nil {
		return err
	}
	defer closeQuietly(proxySrv)
	client := node.NewProxyClient(proxySrv.Addr(), clientCfg.Options()...)
	defer closeQuietly(client)
	if err := client.RegisterList(context.Background(), dist.TaskID, dist.List); err != nil {
		return err
	}

	// The proxy serves a few queries: two good products, one bad.
	queried := 0
	for id := range dist.Ground.Paths {
		quality := core.Good
		if queried == 2 {
			quality = core.Bad
		}
		if _, err := client.QueryPath(context.Background(), id, quality); err != nil {
			return err
		}
		queried++
		if queried == 3 {
			break
		}
	}
	fmt.Println("① proxy served 2 good-product queries and 1 bad-product query")

	// A customer fetches the audit chain; the client verifies every link
	// against the pinned head before handing it over.
	entries, err := client.AuditLog(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("② customer fetched and verified the audit chain: %d entries\n", len(entries))
	for _, entry := range entries {
		fmt.Printf("   #%-3d %-3s %+5.1f  product=%-6s  %s\n",
			entry.Seq, entry.Event.Participant, entry.Event.Delta,
			entry.Event.Product, entry.Event.Reason)
	}

	// Independent replay: recompute the score table from audited events and
	// compare with the published table.
	replayed := reputation.ReplayScores(entries)
	published, err := client.Scores(context.Background())
	if err != nil {
		return err
	}
	for v, want := range published {
		if replayed[v] != want {
			return fmt.Errorf("replayed score for %s (%v) differs from published (%v)", v, replayed[v], want)
		}
	}
	fmt.Printf("③ replayed scores match the published table for all %d participants\n", len(published))

	// A corrupt proxy rewrites history: flip a penalty into a reward. The
	// chain pins every byte, so the verification the customer runs fails.
	head, count := proxy.Ledger().Head()
	doctored := make([]reputation.AuditEntry, len(entries))
	copy(doctored, entries)
	for i := range doctored {
		if doctored[i].Event.Delta < 0 {
			doctored[i].Event.Delta = +1
			doctored[i].Event.Reason = "identified on good product path"
			break
		}
	}
	if err := reputation.VerifyAuditChain(doctored, head, count); err == nil {
		return fmt.Errorf("doctored history unexpectedly verified")
	} else {
		fmt.Printf("④ doctored history REJECTED by the customer's verifier: %v\n", err)
	}
	fmt.Println("⑤ the public score table is auditable end to end")
	return nil
}

type closer interface{ Close() error }

func closeQuietly(c closer) {
	if err := c.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "audit: closing server:", err)
	}
}
