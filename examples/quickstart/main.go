// Quickstart: the smallest end-to-end DE-Sword run.
//
// It wires the paper's Figure 1 supply chain (10 participants, two initial,
// four leaf), distributes 8 RFID-tagged products from v0, has every involved
// participant commit its RFID-traces into a POC list for the proxy, then
// runs one verifiable good-product path query and prints the recovered path
// information and the resulting reputation scores.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The proxy generates the public parameter ps. Examples use the small
	// test geometry so they finish in seconds; production deployments use
	// zkedb.DefaultParams() (q=16, h=32, 128-bit ids).
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		return err
	}
	fmt.Println("① proxy generated public parameter ps")

	// 2. Build the Figure 1 supply chain and its participant runtimes.
	graph := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*core.Member)
	for _, v := range graph.Participants() {
		members[v] = core.NewMember(ps, supplychain.NewParticipant(v))
	}
	fmt.Printf("② supply chain ready: %d participants, initials %v, leaves %v\n",
		len(graph.Participants()), graph.Initials(), graph.Leaves())

	// 3. Distribution phase: 8 tagged products flow from v0 to the leaves;
	// every participant on a product's path reads its tag and records an
	// RFID-trace; the involved participants commit POCs and assemble the
	// POC list.
	tags, err := supplychain.MintTags("id", 8)
	if err != nil {
		return err
	}
	dist, err := core.RunDistribution(ps, graph, members, "v0", tags, nil,
		supplychain.RoundRobinSplitter, "quickstart-task")
	if err != nil {
		return err
	}
	fmt.Printf("③ distribution task done: %d products, POC list with %d POCs and %d pairs\n",
		len(dist.Ground.Paths), len(dist.List.Participants()), len(dist.List.Pairs))

	// 4. The initial participant submits the POC list to the proxy.
	resolver := func(v poc.ParticipantID) (core.Responder, error) { return members[v], nil }
	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), resolver)
	if err := proxy.RegisterList(dist.TaskID, dist.List); err != nil {
		return err
	}
	fmt.Println("④ POC list registered at the proxy")

	// 5. Query phase: a supply-chain application asks for the path of id1,
	// which the quality check classified as good.
	result, err := proxy.QueryPath(context.Background(), "id1", core.Good)
	if err != nil {
		return err
	}
	fmt.Printf("⑤ good-product path query for id1 (task %s):\n", result.TaskID)
	for i, v := range result.Path {
		trace := result.Traces[v]
		fmt.Printf("   hop %d: %-3s trace=%q\n", i+1, v, trace.Data)
	}
	fmt.Printf("   complete=%v violations=%d\n", result.Complete, len(result.Violations))

	// 6. The double-edged award: everyone on the good path earned a
	// positive, publicly visible reputation score.
	fmt.Println("⑥ public reputation scores after the query:")
	for _, v := range proxy.Ledger().Ranking() {
		fmt.Printf("   %-3s %+.1f\n", v, proxy.Ledger().Score(v))
	}
	return nil
}
