// Contamination localization — the application the paper's threat model
// opens with (§I): a product quality administration discovers a bad product,
// queries its verified path to locate the contamination source, recalls the
// other products that passed through that source, and applies
// responsibility-weighted negative reputation — all while one participant on
// the path tries to deny involvement, horsemeat-scandal style.
//
//	go run ./examples/contamination
package main

import (
	"context"
	"fmt"
	"os"

	"desword/internal/adversary"
	"desword/internal/core"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/supplychain"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "contamination:", err)
		os.Exit(1)
	}
}

func run() error {
	ps, err := poc.PSGen(zkedb.TestParams())
	if err != nil {
		return err
	}
	graph := supplychain.FigureOneGraph()
	members := make(map[poc.ParticipantID]*core.Member)
	for _, v := range graph.Participants() {
		members[v] = core.NewMember(ps, supplychain.NewParticipant(v))
	}
	tags, err := supplychain.MintTags("batch", 8)
	if err != nil {
		return err
	}
	dist, err := core.RunDistribution(ps, graph, members, "v0", tags, nil,
		supplychain.RoundRobinSplitter, "lot-2026-07")
	if err != nil {
		return err
	}

	// The PA agency's quality check flags batch3 as contaminated. The
	// participant that actually contaminated it — the second hop of its
	// path — will deny everything.
	const badProduct = poc.ProductID("batch3")
	truePath := dist.Ground.Paths[badProduct]
	culprit := truePath[1]
	fmt.Printf("① quality check: %s is BAD (true path, unknown to the proxy: %v)\n", badProduct, truePath)
	fmt.Printf("② participant %s will deny having processed %s\n", culprit, badProduct)

	denier := adversary.NewDishonest(members[culprit])
	denier.DenyProcessing[badProduct] = true
	resolver := func(v poc.ParticipantID) (core.Responder, error) {
		if v == culprit {
			return denier, nil
		}
		return members[v], nil
	}

	// Upstream participants carry more responsibility for a contamination:
	// use the responsibility-weighted award strategy.
	strategy := reputation.DefaultStrategy()
	strategy.Weigh = reputation.ResponsibilityWeigher
	proxy := core.NewProxy(ps, strategy, resolver)
	if err := proxy.RegisterList(dist.TaskID, dist.List); err != nil {
		return err
	}

	// Bad-product path query: the denial cannot survive ZK-EDB soundness —
	// the culprit committed a trace for badProduct into its POC and
	// therefore cannot produce a valid non-ownership proof.
	result, err := proxy.QueryPath(context.Background(), badProduct, core.Bad)
	if err != nil {
		return err
	}
	fmt.Printf("③ verified path recovered by the proxy: %v (complete=%v)\n", result.Path, result.Complete)
	for _, violation := range result.Violations {
		fmt.Printf("   DETECTED %s by %s: %s\n", violation.Type, violation.Participant, violation.Detail)
	}

	// Localize the source: the first hop of the verified path.
	source := result.Path[0]
	fmt.Printf("④ contamination source localized at %s; recalling its other products\n", source)

	// Targeted recall: the agency samples the other products of the lot
	// (still passing quality checks, hence good-product queries) and recalls
	// every one whose verified path passed through the source.
	recalled := 0
	for id := range dist.Ground.Paths {
		if id == badProduct {
			continue
		}
		res, err := proxy.QueryPath(context.Background(), id, core.Good)
		if err != nil {
			return err
		}
		for _, v := range res.Path {
			if v == source {
				fmt.Printf("   recall %s (path %v)\n", id, res.Path)
				recalled++
				break
			}
		}
	}
	fmt.Printf("⑤ %d additional products recalled\n", recalled)

	fmt.Println("⑥ responsibility-weighted reputation after the investigation:")
	for _, v := range proxy.Ledger().Ranking() {
		fmt.Printf("   %-3s %+7.2f\n", v, proxy.Ledger().Score(v))
	}
	if proxy.Ledger().Score(culprit) >= 0 {
		return fmt.Errorf("the denier must end with a negative score")
	}
	fmt.Printf("   → the denier %s carries the violation penalty on top of the path penalty\n", culprit)
	return nil
}
