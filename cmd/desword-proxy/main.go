// Command desword-proxy runs DE-Sword's trustworthy query proxy as a TCP
// daemon: it generates the public parameter ps, accepts POC-list submissions
// from initial participants, answers product path information queries from
// supply-chain applications, and maintains the public reputation ledger.
//
// Usage:
//
//	desword-proxy -listen 127.0.0.1:7700 -dir participants.json
//
// participants.json maps participant ids to their listen addresses:
//
//	{"v0": "127.0.0.1:7701", "v1": "127.0.0.1:7702"}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"desword/internal/core"
	"desword/internal/node"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "desword-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:7700", "address to serve the proxy protocol on")
		dirFile = flag.String("dir", "", "JSON file mapping participant ids to addresses (required)")
		q       = flag.Int("q", 16, "ZK-EDB branching factor (power of two)")
		height  = flag.Int("height", 32, "ZK-EDB tree height")
		keyBits = flag.Int("keybits", 128, "product-id digest bits")
		modulus = flag.Int("modulus", 1024, "RSA modulus bits")
	)
	flag.Parse()
	if *dirFile == "" {
		return fmt.Errorf("-dir is required")
	}
	data, err := os.ReadFile(*dirFile)
	if err != nil {
		return fmt.Errorf("reading directory: %w", err)
	}
	var dir map[poc.ParticipantID]string
	if err := json.Unmarshal(data, &dir); err != nil {
		return fmt.Errorf("parsing directory: %w", err)
	}

	params := zkedb.Params{Q: *q, H: *height, KeyBits: *keyBits, ModulusBits: *modulus}
	fmt.Printf("generating public parameter ps (q=%d h=%d keybits=%d modulus=%d)...\n",
		params.Q, params.H, params.KeyBits, params.ModulusBits)
	ps, err := poc.PSGen(params)
	if err != nil {
		return err
	}

	proxy := core.NewProxy(ps, reputation.DefaultStrategy(), node.DirectoryResolver(dir))
	srv, err := node.ServeProxy(*listen, proxy)
	if err != nil {
		return err
	}
	fmt.Printf("proxy listening on %s with %d known participants\n", srv.Addr(), len(dir))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	fmt.Println("shutting down")
	return srv.Close()
}
