// Command desword-proxy runs DE-Sword's trustworthy query proxy as a TCP
// daemon: it generates the public parameter ps, accepts POC-list submissions
// from initial participants, answers product path information queries from
// supply-chain applications, and maintains the public reputation ledger.
//
// Usage:
//
//	desword-proxy -listen 127.0.0.1:7700 -dir participants.json -admin 127.0.0.1:6060
//
// participants.json maps participant ids to their listen addresses:
//
//	{"v0": "127.0.0.1:7701", "v1": "127.0.0.1:7702"}
//
// With -admin set, an HTTP listener exposes /metrics (Prometheus text
// format), /healthz, /debug/pprof, and /debug/statusz — a fleet view that
// polls every directory participant over the wire's telemetry message and
// shows per-endpoint request rates, latency quantiles, SLO budget burn, and
// exemplar trace links. With -slo set, objective breaches flip /healthz to
// 503 and, when -profile-dir is set, capture CPU+heap profiles into a
// bounded on-disk ring.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/reputation"
	"desword/internal/telemetry"
	"desword/internal/trace"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-proxy failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:7700", "address to serve the proxy protocol on")
		dirFile = flag.String("dir", "", "JSON file mapping participant ids to addresses (required)")
		admin   = flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz and /debug/pprof (e.g. :6060)")
		q       = flag.Int("q", 16, "ZK-EDB branching factor (power of two)")
		height  = flag.Int("height", 32, "ZK-EDB tree height")
		keyBits = flag.Int("keybits", 128, "product-id digest bits")
		modulus = flag.Int("modulus", 1024, "RSA modulus bits")
		sample  = flag.Float64("trace-sample", 0, "fraction of path queries to trace in [0,1]; traces appear under /debug/traces on the admin listener")
		pxCfg   core.ProxyConfig
		logCfg  obs.LogConfig
		tcfg    node.ClientConfig
		telCfg  telemetry.Config
		evCfg   events.Config
	)
	pxCfg.RegisterFlags(flag.CommandLine)
	logCfg.RegisterFlags(flag.CommandLine)
	tcfg.RegisterFlags(flag.CommandLine)
	telCfg.RegisterFlags(flag.CommandLine)
	evCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Setup(os.Stderr)
	if err != nil {
		return err
	}
	obs.RegisterProcessMetrics(obs.Default)
	trace.Default.SetService("proxy")
	trace.Default.SetSampleRate(*sample)
	if *dirFile == "" {
		return fmt.Errorf("-dir is required")
	}
	data, err := os.ReadFile(*dirFile)
	if err != nil {
		return fmt.Errorf("reading directory: %w", err)
	}
	var dir map[poc.ParticipantID]string
	if err := json.Unmarshal(data, &dir); err != nil {
		return fmt.Errorf("parsing directory: %w", err)
	}

	params := zkedb.Params{Q: *q, H: *height, KeyBits: *keyBits, ModulusBits: *modulus}
	logger.Info("generating public parameter ps",
		"q", params.Q, "h", params.H, "keybits", params.KeyBits, "modulus", params.ModulusBits)
	genStart := time.Now()
	ps, err := poc.PSGen(params)
	if err != nil {
		return err
	}
	logger.Info("public parameter ready", "elapsed", time.Since(genStart))

	directory := node.DirectoryResolver(dir, tcfg.Options()...)
	defer directory.Close()

	// The flight recorder: one wide event per completed query (and per
	// handled node request), in the ring always, in a JSONL journal when
	// -events-dir is set.
	sink, err := evCfg.Build("proxy")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sink.Close(); cerr != nil {
			logger.Warn("closing event journal", "err", cerr)
		}
	}()

	// The collector snapshots the local registry on a ticker, scoring the
	// -slo objectives and capturing profiles on breach; the monitor adds the
	// fleet dimension, polling every directory participant over the wire's
	// idempotent telemetry message.
	collector, engine, err := telCfg.Build(obs.Default, "proxy")
	if err != nil {
		return err
	}
	collector.Start()
	defer collector.Stop()
	monitorOpts := []telemetry.MonitorOption{telemetry.WithPollInterval(telCfg.Interval)}
	if engine != nil {
		monitorOpts = append(monitorOpts, telemetry.WithObjectives(engine.Objectives()))
	}
	monitor := telemetry.NewMonitor(monitorOpts...)
	monitor.AddLocal("proxy", collector)
	for pid := range dir {
		responder, err := directory.Resolve(pid)
		if err != nil {
			return err
		}
		client, ok := responder.(*node.ResponderClient)
		if !ok {
			continue
		}
		monitor.AddPeer(string(pid), client.Telemetry)
	}
	monitor.Start()
	defer monitor.Stop()

	if *admin != "" {
		adminOpts := []obs.AdminOption{
			obs.WithRoute("/debug/statusz", telemetry.StatuszHandler(monitor)),
			obs.WithRoute("/debug/events", events.Explorer(sink.Ring())),
		}
		if engine != nil {
			adminOpts = append(adminOpts, obs.WithHealth(engine.Health))
		}
		adminSrv, err := obs.ServeAdmin(*admin, obs.Default, adminOpts...)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := adminSrv.Close(); cerr != nil {
				logger.Warn("closing admin listener", "err", cerr)
			}
		}()
		logger.Info("admin listener up", "addr", adminSrv.Addr())
	}

	pxCfg.EventSink = sink
	proxy := core.NewProxyWithConfig(ps, reputation.DefaultStrategy(), directory.Resolver(), pxCfg)
	srvOpts := []node.Option{node.WithTimeout(tcfg.Timeout), node.WithEventSink(sink)}
	if pxCfg.AdmissionWorkers > 0 || pxCfg.AdmissionQueue != 0 {
		// The same admission settings gate the TCP front door, so overload
		// is shed before a request even reaches the proxy core.
		srvOpts = append(srvOpts, node.WithAdmission(pxCfg.AdmissionWorkers, pxCfg.AdmissionQueue))
	}
	srv, err := node.ServeProxy(context.Background(), *listen, proxy, srvOpts...)
	if err != nil {
		return err
	}
	logger.Info("proxy listening", "addr", srv.Addr(), "participants", len(dir),
		"shards", proxy.Config().Shards)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logger.Info("shutting down", "signal", sig.String())
	return srv.Close()
}
