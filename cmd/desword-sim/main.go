// Command desword-sim runs the double-edged reputation incentive simulator
// (experiment E7, quantifying the paper's Figure 3): it reports the
// reputation distribution of honest, trace-deleting and trace-adding
// participants under a configurable quality/query model, and the break-even
// bad-product probability at which deviations stop paying.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"desword/internal/bench"
	"desword/internal/events"
	"desword/internal/obs"
	"desword/internal/sim"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-sim failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.DefaultConfig()
	var sweep string
	var logCfg obs.LogConfig
	var evCfg events.Config
	logCfg.RegisterFlags(flag.CommandLine)
	evCfg.RegisterFlags(flag.CommandLine)
	flag.IntVar(&cfg.Products, "products", cfg.Products, "products processed per epoch")
	flag.Float64Var(&cfg.PBad, "pbad", cfg.PBad, "probability a product is bad")
	flag.Float64Var(&cfg.QueryRateGood, "qgood", cfg.QueryRateGood, "query probability for good products")
	flag.Float64Var(&cfg.QueryRateBad, "qbad", cfg.QueryRateBad, "query probability for bad products")
	flag.Float64Var(&cfg.PositiveUnit, "upos", cfg.PositiveUnit, "positive award unit")
	flag.Float64Var(&cfg.NegativeUnit, "uneg", cfg.NegativeUnit, "negative award unit")
	flag.Float64Var(&cfg.DeleteFrac, "delete", cfg.DeleteFrac, "fraction of traces the deleter omits")
	flag.Float64Var(&cfg.AddFrac, "add", cfg.AddFrac, "fake traces the adder commits (fraction of products)")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials per strategy")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.StringVar(&sweep, "sweep", "", "comma-separated p_bad values to sweep (overrides -pbad)")
	flag.Parse()
	if _, err := logCfg.Setup(os.Stderr); err != nil {
		return err
	}
	obs.RegisterProcessMetrics(obs.Default)

	pBads := []float64{cfg.PBad}
	if sweep != "" {
		pBads = pBads[:0]
		for _, s := range strings.Split(sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("parsing sweep value %q: %w", s, err)
			}
			pBads = append(pBads, v)
		}
	}
	fmt.Printf("expected value per committed trace at p_bad=%.4f: %+.4f (break-even p_bad: %.4f)\n\n",
		cfg.PBad, cfg.ExpectedPerTrace(), cfg.BreakEvenPBad())

	// With -events-dir set, every swept cell lands in a per-campaign journal
	// as a durable campaign event, scannable with desword-events.
	sink, err := evCfg.Build("sim")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sink.Close(); cerr != nil {
			slog.Warn("closing campaign journal", "err", cerr)
		}
	}()

	rows := make([]sim.SweepRow, 0, len(pBads))
	for _, p := range pBads {
		c := cfg
		c.PBad = p
		rowStart := time.Now()
		outcomes, err := sim.Run(c)
		if err != nil {
			return err
		}
		row := sim.SweepRow{PBad: p, Outcomes: outcomes}
		rows = append(rows, row)
		sim.EmitCampaign(sink, c, row, rowStart)
	}
	return bench.IncentiveTable(cfg, rows).Render(os.Stdout)
}
