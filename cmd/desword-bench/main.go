// Command desword-bench regenerates every table and figure of the DE-Sword
// paper's evaluation section (§VI) plus this repository's extension
// experiments. See DESIGN.md §5 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Usage:
//
//	desword-bench -exp all            # everything (several minutes)
//	desword-bench -exp table2         # one experiment
//	desword-bench -exp fig5 -fast     # reduced sweep for a quick look
//
// Experiments: tmc (E1), fig4a (E2), fig4b (E3), table2 (E4), fig5 (E5),
// baseline (E6), incentive (E7), e2e (E8).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"desword/internal/bench"
	"desword/internal/sim"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "desword-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: all|tmc|fig4a|fig4b|table2|fig5|baseline|incentive|e2e|ablation")
		modulus = flag.Int("modulus", 1024, "RSA modulus bits for the qTMC layer")
		reps    = flag.Int("reps", 10, "repetitions per timing point (paper smooths over 50)")
		dbSize  = flag.Int("db", 8, "committed traces per participant in macro benches")
		fast    = flag.Bool("fast", false, "reduced parameter sweeps")
	)
	flag.Parse()

	qs := bench.PaperQs()
	qhs := bench.PaperQH()
	lengths := []int{2, 4, 6, 8, 10}
	if *fast {
		qs = []int{8, 32, 128}
		qhs = []bench.QH{{Q: 8, H: 43}, {Q: 32, H: 26}, {Q: 128, H: 19}}
		lengths = []int{2, 4, 6}
	}

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}
	ran := 0

	if want("tmc") {
		if err := bench.RunTMCMicro(*reps * 5).Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("fig4a") {
		t, err := bench.RunFig4a(qs, 128, *modulus, *reps)
		if err != nil {
			return fmt.Errorf("fig4a: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("fig4b") {
		t, err := bench.RunFig4b(qs, 128, *modulus, *reps*5)
		if err != nil {
			return fmt.Errorf("fig4b: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("table2") {
		t, err := bench.RunTable2(qhs, *modulus, *dbSize)
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("fig5") {
		t, err := bench.RunFig5(qhs, *modulus, *dbSize, *reps)
		if err != nil {
			return fmt.Errorf("fig5: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("baseline") {
		params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
		t, err := bench.RunBaselineComparison(params, 64)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("incentive") {
		cfg := sim.DefaultConfig()
		pBads := []float64{0.005, 0.01, 0.02, cfg.BreakEvenPBad(), 0.1, 0.2}
		t, err := bench.RunIncentive(cfg, pBads)
		if err != nil {
			return fmt.Errorf("incentive: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("e2e") {
		params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
		if *fast {
			params = zkedb.TestParams()
		}
		t, err := bench.RunE2E(params, lengths, *reps)
		if err != nil {
			return fmt.Errorf("e2e: %w", err)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("ablation") {
		params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
		sizes := []int{1, 4, 16, 64}
		if *fast {
			sizes = []int{1, 4, 16}
		}
		a1, err := bench.RunAblationDBSize(params, sizes, *reps)
		if err != nil {
			return fmt.Errorf("ablation A1: %w", err)
		}
		if err := a1.Render(os.Stdout); err != nil {
			return err
		}
		moduli := []int{512, 1024, 2048}
		if *fast {
			moduli = []int{512, 1024}
		}
		a2, err := bench.RunAblationModulus(16, 32, moduli, *reps)
		if err != nil {
			return fmt.Errorf("ablation A2: %w", err)
		}
		if err := a2.Render(os.Stdout); err != nil {
			return err
		}
		a3, err := bench.RunAblationSoftCache(params, *reps)
		if err != nil {
			return fmt.Errorf("ablation A3: %w", err)
		}
		if err := a3.Render(os.Stdout); err != nil {
			return err
		}
		a4, err := bench.RunAblationTreeScheme(qhs, *modulus, *reps)
		if err != nil {
			return fmt.Errorf("ablation A4: %w", err)
		}
		if err := a4.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
