// Command desword-bench regenerates every table and figure of the DE-Sword
// paper's evaluation section (§VI) plus this repository's extension
// experiments. See DESIGN.md §5 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Usage:
//
//	desword-bench -exp all            # everything (several minutes)
//	desword-bench -exp table2         # one experiment
//	desword-bench -exp fig5 -fast     # reduced sweep for a quick look
//	desword-bench -exp e2e -metrics-out bench-metrics.prom
//
// Experiments: tmc (E1), fig4a (E2), fig4b (E3), table2 (E4), fig5 (E5),
// baseline (E6), incentive (E7), e2e (E8), transport (E9), crypto (E10),
// telemetry (E11), events (E12), ablation (A1–A4), store (E13),
// saturation (E14).
//
// With -metrics-out, the process-wide metrics registry (proof generation and
// verification timings, query latencies, …) is snapshotted to the file after
// each experiment, so bench runs emit machine-readable telemetry alongside
// the rendered tables. A file ending in .json gets the registry's JSON form
// (one object per series); any other name gets Prometheus text format.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"desword/internal/bench"
	"desword/internal/obs"
	"desword/internal/sim"
	"desword/internal/trace"
	"desword/internal/zkedb"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-bench failed", "err", err)
		os.Exit(1)
	}
}

// renderer is the common shape of every experiment result.
type renderer interface {
	Render(w io.Writer) error
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment: all|tmc|fig4a|fig4b|table2|fig5|baseline|incentive|e2e|transport|crypto|telemetry|events|ablation|store|saturation")
		satOut     = flag.String("saturation-out", "BENCH_saturation.json", "write the E14 machine-readable report (p50/p99 vs offered load, shed counters, per-shard stats) to this JSON file")
		modulus    = flag.Int("modulus", 1024, "RSA modulus bits for the qTMC layer")
		reps       = flag.Int("reps", 10, "repetitions per timing point (paper smooths over 50)")
		dbSize     = flag.Int("db", 8, "committed traces per participant in macro benches")
		fast       = flag.Bool("fast", false, "reduced parameter sweeps")
		metricsOut = flag.String("metrics-out", "", "snapshot the metrics registry to this file after each experiment (Prometheus text format)")
		traceOut   = flag.String("trace-out", "", "dump recorded traces to this file as JSON after each experiment")
		sample     = flag.Float64("trace-sample", 0, "fraction of path queries to trace in [0,1]; implied 1.0 when -trace-out is set and the rate is left at 0")
		logCfg     obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Setup(os.Stderr)
	if err != nil {
		return err
	}
	obs.RegisterProcessMetrics(obs.Default)
	if *traceOut != "" && *sample == 0 {
		// Asking for a trace dump but sampling nothing is always a mistake.
		*sample = 1
	}
	trace.Default.SetService("bench")
	trace.Default.SetSampleRate(*sample)

	qs := bench.PaperQs()
	qhs := bench.PaperQH()
	lengths := []int{2, 4, 6, 8, 10}
	if *fast {
		qs = []int{8, 32, 128}
		qhs = []bench.QH{{Q: 8, H: 43}, {Q: 32, H: 26}, {Q: 128, H: 19}}
		lengths = []int{2, 4, 6}
	}

	// experiments preserves the historical run order of -exp all.
	type experiment struct {
		name string
		run  func() error
	}
	render := func(t renderer, err error) error {
		if err != nil {
			return err
		}
		return t.Render(os.Stdout)
	}
	experiments := []experiment{
		{"tmc", func() error { return bench.RunTMCMicro(*reps * 5).Render(os.Stdout) }},
		{"fig4a", func() error { return render(bench.RunFig4a(qs, 128, *modulus, *reps)) }},
		{"fig4b", func() error { return render(bench.RunFig4b(qs, 128, *modulus, *reps*5)) }},
		{"table2", func() error { return render(bench.RunTable2(qhs, *modulus, *dbSize)) }},
		{"fig5", func() error { return render(bench.RunFig5(qhs, *modulus, *dbSize, *reps)) }},
		{"baseline", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			return render(bench.RunBaselineComparison(params, 64))
		}},
		{"incentive", func() error {
			cfg := sim.DefaultConfig()
			pBads := []float64{0.005, 0.01, 0.02, cfg.BreakEvenPBad(), 0.1, 0.2}
			return render(bench.RunIncentive(cfg, pBads))
		}},
		{"e2e", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			if *fast {
				params = zkedb.TestParams()
			}
			return render(bench.RunE2E(params, lengths, *reps))
		}},
		{"transport", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			if *fast {
				params = zkedb.TestParams()
			}
			return render(bench.RunTransport(params, lengths, *reps))
		}},
		{"crypto", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			size := *dbSize * 8
			workers := []int{1, 2, 4, 8}
			if *fast {
				params = zkedb.TestParams()
				size = *dbSize
				workers = []int{1, 2, 4}
			}
			if err := render(bench.RunCryptoCommit(params, size, workers, *reps)); err != nil {
				return fmt.Errorf("E10a: %w", err)
			}
			if err := render(bench.RunCryptoProofCache(params, size, *reps)); err != nil {
				return fmt.Errorf("E10b: %w", err)
			}
			return nil
		}},
		{"telemetry", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			length := 6
			if *fast {
				params = zkedb.TestParams()
				length = 4
			}
			return render(bench.RunTelemetry(params, length, *reps))
		}},
		{"events", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			length := 6
			if *fast {
				params = zkedb.TestParams()
				length = 4
			}
			return render(bench.RunEvents(params, length, *reps))
		}},
		{"ablation", func() error {
			params := zkedb.Params{Q: 16, H: 32, KeyBits: 128, ModulusBits: *modulus}
			sizes := []int{1, 4, 16, 64}
			if *fast {
				sizes = []int{1, 4, 16}
			}
			if err := render(bench.RunAblationDBSize(params, sizes, *reps)); err != nil {
				return fmt.Errorf("A1: %w", err)
			}
			moduli := []int{512, 1024, 2048}
			if *fast {
				moduli = []int{512, 1024}
			}
			if err := render(bench.RunAblationModulus(16, 32, moduli, *reps)); err != nil {
				return fmt.Errorf("A2: %w", err)
			}
			if err := render(bench.RunAblationSoftCache(params, *reps)); err != nil {
				return fmt.Errorf("A3: %w", err)
			}
			if err := render(bench.RunAblationTreeScheme(qhs, *modulus, *reps)); err != nil {
				return fmt.Errorf("A4: %w", err)
			}
			return nil
		}},
		{"store", func() error {
			// A shallow wide geometry: 40-bit digests hold 10k+ keys with
			// negligible collision odds while keeping per-key path cost low
			// enough that the two full rebuilds E13a needs stay tractable.
			params := zkedb.Params{Q: 16, H: 10, KeyBits: 40, ModulusBits: 512}
			base, ks := 10000, []int{1, 16, 256}
			lazyBase, cacheNodes := 2000, 64
			if *fast {
				params = zkedb.TestParams()
				base, ks = 400, []int{1, 8, 64}
				lazyBase, cacheNodes = 400, 32
			}
			if err := render(bench.RunStoreIncremental(params, base, ks)); err != nil {
				return fmt.Errorf("E13a: %w", err)
			}
			if err := render(bench.RunStoreLazy(params, lazyBase, cacheNodes, *reps)); err != nil {
				return fmt.Errorf("E13b: %w", err)
			}
			return nil
		}},
		{"saturation", func() error {
			// E14 measures the proxy tier (shard routing, coalescing,
			// admission), not the crypto: test-size ZK-EDB parameters keep
			// per-hop proof cost small so the offered-load sweep saturates
			// queueing, not modular exponentiation.
			params := zkedb.TestParams()
			shardCounts := []int{1, 4}
			qpsLevels := []int{50, 200, 800}
			chainLen, products := 4, 32
			duration := 2 * time.Second
			if *fast {
				shardCounts = []int{1, 2}
				qpsLevels = []int{50, 200}
				chainLen, products = 3, 16
				duration = 500 * time.Millisecond
			}
			return render(bench.RunSaturation(params, shardCounts, qpsLevels, chainLen, products, duration, *satOut))
		}},
	}

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	ran := 0
	for _, e := range experiments {
		if !want(e.name) {
			continue
		}
		start := time.Now()
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		logger.Info("experiment done", "exp", e.name, "elapsed", time.Since(start))
		ran++
		if *metricsOut != "" {
			if err := snapshotMetrics(*metricsOut); err != nil {
				return err
			}
			logger.Info("metrics snapshot written", "file", *metricsOut)
		}
		if *traceOut != "" {
			if err := snapshotTraces(*traceOut); err != nil {
				return err
			}
			logger.Info("trace snapshot written", "file", *traceOut, "traces", trace.Default.Recorder().Len())
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// snapshotMetrics rewrites path with the current cumulative registry state,
// so the file always holds one consistent, complete exposition even if a
// later experiment is interrupted. The extension picks the format: .json
// gets the registry's JSON form, anything else Prometheus text.
func snapshotMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics snapshot: %w", err)
	}
	write := obs.Default.WritePrometheus
	if strings.HasSuffix(path, ".json") {
		write = obs.Default.WriteJSON
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing metrics snapshot: %w", err)
	}
	return nil
}

// snapshotTraces rewrites path with every trace currently held by the
// recorder ring — the hop-latency-attribution input EXPERIMENTS.md's tracing
// recipe post-processes.
func snapshotTraces(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace snapshot: %w", err)
	}
	if err := trace.Default.Recorder().WriteJSON(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing trace snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace snapshot: %w", err)
	}
	return nil
}
