// Command desword-participant runs one supply-chain participant as a TCP
// daemon, and doubles as the initial participant's POC-list assembly tool.
//
// Serve mode — fetch ps from the proxy, commit the local trace database into
// a POC, then answer query interactions:
//
//	desword-participant -id v2 -listen 127.0.0.1:7702 \
//	    -proxy 127.0.0.1:7700 -traces v2-traces.json -write-poc v2-poc.json
//
// The traces file describes one distribution task's local state:
//
//	{
//	  "task_id": "task-1",
//	  "traces":   [{"product": "id1", "data": "op=process;station=3"}],
//	  "next_hops": {"id1": "v5"}
//	}
//
// Assemble mode — run once by the initial participant after collecting the
// POC files its descendants exported with -write-poc; composes the POC list
// and submits it to the proxy (§IV.B):
//
//	desword-participant -assemble -task task-1 -proxy 127.0.0.1:7700 \
//	    -pairs pairs.json -pocs v0-poc.json,v2-poc.json,v5-poc.json
//
// pairs.json: [{"parent": "v0", "child": "v2"}, {"parent": "v2", "child": "v5"}]
//
// With -admin set, an HTTP listener exposes /metrics (Prometheus text
// format), /healthz, /debug/pprof, and a local /debug/statusz with this
// participant's request rates, latency quantiles and SLO state. With -slo
// set, objective breaches flip /healthz to 503 and, when -profile-dir is
// set, capture CPU+heap profiles into a bounded on-disk ring.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/supplychain"
	"desword/internal/telemetry"
	"desword/internal/trace"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-participant failed", "err", err)
		os.Exit(1)
	}
}

// scenario is the human-editable trace database format.
type scenario struct {
	TaskID   string                              `json:"task_id"`
	Traces   []scenarioTrace                     `json:"traces"`
	NextHops map[poc.ProductID]poc.ParticipantID `json:"next_hops"`
}

type scenarioTrace struct {
	Product poc.ProductID `json:"product"`
	Data    string        `json:"data"`
}

func run() error {
	var (
		id        = flag.String("id", "", "participant identity (serve mode)")
		listen    = flag.String("listen", "127.0.0.1:0", "address to serve query interactions on")
		proxyAddr = flag.String("proxy", "127.0.0.1:7700", "proxy address")
		admin     = flag.String("admin", "", "optional admin HTTP address serving /metrics, /healthz and /debug/pprof (e.g. :6061)")
		traces    = flag.String("traces", "", "JSON trace database file (serve mode)")
		writePOC  = flag.String("write-poc", "", "optional file to export this participant's POC to")
		assemble  = flag.Bool("assemble", false, "assemble and submit a POC list instead of serving")
		task      = flag.String("task", "", "task id (assemble mode)")
		pairs     = flag.String("pairs", "", "JSON POC-pair file (assemble mode)")
		pocs      = flag.String("pocs", "", "comma-separated POC files (assemble mode)")
		sample    = flag.Float64("trace-sample", 0, "fraction of locally-rooted traces to sample in [0,1]; remote-parented requests are always traced when the caller traces them")
		logCfg    obs.LogConfig
		clientCfg node.ClientConfig
		cryptoCfg core.CryptoConfig
		telCfg    telemetry.Config
		evCfg     events.Config
	)
	logCfg.RegisterFlags(flag.CommandLine)
	clientCfg.RegisterFlags(flag.CommandLine)
	cryptoCfg.RegisterFlags(flag.CommandLine)
	telCfg.RegisterFlags(flag.CommandLine)
	evCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Setup(os.Stderr)
	if err != nil {
		return err
	}
	obs.RegisterProcessMetrics(obs.Default)
	trace.Default.SetService("participant:" + *id)
	trace.Default.SetSampleRate(*sample)
	if *assemble {
		return runAssemble(logger, *proxyAddr, *task, *pairs, *pocs, clientCfg)
	}
	return runServe(logger, *id, *listen, *proxyAddr, *admin, *traces, *writePOC, clientCfg, cryptoCfg, telCfg, evCfg)
}

func runServe(logger *slog.Logger, id, listen, proxyAddr, admin, tracesFile, writePOC string, clientCfg node.ClientConfig, cryptoCfg core.CryptoConfig, telCfg telemetry.Config, evCfg events.Config) error {
	if id == "" || tracesFile == "" {
		return fmt.Errorf("-id and -traces are required in serve mode")
	}
	data, err := os.ReadFile(tracesFile)
	if err != nil {
		return fmt.Errorf("reading traces: %w", err)
	}
	var sc scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return fmt.Errorf("parsing traces: %w", err)
	}
	if sc.TaskID == "" {
		return fmt.Errorf("traces file missing task_id")
	}

	client := node.NewProxyClient(proxyAddr, clientCfg.Options()...)
	defer client.Close()
	ps, err := client.GetParams(context.Background())
	if err != nil {
		return fmt.Errorf("fetching ps from proxy: %w", err)
	}
	logger.Info("fetched public parameter", "proxy", proxyAddr)

	memberOpts, err := cryptoCfg.MemberOptions()
	if err != nil {
		return err
	}
	member := core.NewMember(ps, supplychain.NewParticipant(poc.ParticipantID(id)), memberOpts...)
	for _, tr := range sc.Traces {
		if err := member.Participant().RecordTrace(poc.Trace{Product: tr.Product, Data: []byte(tr.Data)}); err != nil {
			return err
		}
	}
	commitStart := time.Now()
	credential, err := member.CommitTask(sc.TaskID)
	if err != nil {
		return err
	}
	logger.Info("committed trace database",
		"task", sc.TaskID, "traces", len(sc.Traces), "elapsed", time.Since(commitStart))
	for product, next := range sc.NextHops {
		if err := member.SetNextHop(sc.TaskID, product, next); err != nil {
			return err
		}
	}
	if writePOC != "" {
		out, err := json.MarshalIndent(credential, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(writePOC, out, 0o644); err != nil {
			return fmt.Errorf("writing POC: %w", err)
		}
		logger.Info("POC exported", "participant", id, "file", writePOC)
	}

	// The flight recorder: one wide event per handled request, in the ring
	// always, in a JSONL journal when -events-dir is set.
	sink, err := evCfg.Build("participant:" + id)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sink.Close(); cerr != nil {
			logger.Warn("closing event journal", "err", cerr)
		}
	}()

	// Local telemetry: registry snapshots on a ticker, -slo scoring, and a
	// single-peer statusz so one participant is debuggable on its own.
	collector, engine, err := telCfg.Build(obs.Default, "participant:"+id)
	if err != nil {
		return err
	}
	collector.Start()
	defer collector.Stop()
	monitorOpts := []telemetry.MonitorOption{telemetry.WithPollInterval(telCfg.Interval)}
	if engine != nil {
		monitorOpts = append(monitorOpts, telemetry.WithObjectives(engine.Objectives()))
	}
	monitor := telemetry.NewMonitor(monitorOpts...)
	monitor.AddLocal("participant:"+id, collector)
	monitor.Start()
	defer monitor.Stop()

	if admin != "" {
		adminOpts := []obs.AdminOption{
			obs.WithRoute("/debug/statusz", telemetry.StatuszHandler(monitor)),
			obs.WithRoute("/debug/events", events.Explorer(sink.Ring())),
		}
		if engine != nil {
			adminOpts = append(adminOpts, obs.WithHealth(engine.Health))
		}
		adminSrv, err := obs.ServeAdmin(admin, obs.Default, adminOpts...)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := adminSrv.Close(); cerr != nil {
				logger.Warn("closing admin listener", "err", cerr)
			}
		}()
		logger.Info("admin listener up", "addr", adminSrv.Addr())
	}

	srv, err := node.ServeParticipant(context.Background(), listen, member,
		node.WithTimeout(clientCfg.Timeout), node.WithEventSink(sink))
	if err != nil {
		return err
	}
	logger.Info("participant listening", "id", id, "addr", srv.Addr(), "task", sc.TaskID)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logger.Info("shutting down", "signal", sig.String())
	return srv.Close()
}

func runAssemble(logger *slog.Logger, proxyAddr, task, pairsFile, pocsArg string, clientCfg node.ClientConfig) error {
	if task == "" || pairsFile == "" || pocsArg == "" {
		return fmt.Errorf("-task, -pairs and -pocs are required in assemble mode")
	}
	list := poc.NewList()
	for _, file := range strings.Split(pocsArg, ",") {
		data, err := os.ReadFile(strings.TrimSpace(file))
		if err != nil {
			return fmt.Errorf("reading POC %s: %w", file, err)
		}
		var credential poc.POC
		if err := json.Unmarshal(data, &credential); err != nil {
			return fmt.Errorf("parsing POC %s: %w", file, err)
		}
		if err := list.AddPOC(credential); err != nil {
			return err
		}
	}
	data, err := os.ReadFile(pairsFile)
	if err != nil {
		return fmt.Errorf("reading pairs: %w", err)
	}
	var pairList []poc.Pair
	if err := json.Unmarshal(data, &pairList); err != nil {
		return fmt.Errorf("parsing pairs: %w", err)
	}
	for _, p := range pairList {
		list.AddPair(p.Parent, p.Child)
	}
	if err := list.Validate(); err != nil {
		return err
	}
	client := node.NewProxyClient(proxyAddr, clientCfg.Options()...)
	defer client.Close()
	if err := client.RegisterList(context.Background(), task, list); err != nil {
		return err
	}
	logger.Info("POC list submitted",
		"task", task, "participants", len(list.Participants()), "pairs", len(list.Pairs), "proxy", proxyAddr)
	return nil
}
