// Command desword-query is the supply-chain application client: it asks a
// running desword-proxy for a product's verifiable path information (good or
// bad flavour) and for the public reputation table.
//
// Usage:
//
//	desword-query -proxy 127.0.0.1:7700 -product drug-1 -quality good
//	desword-query -proxy 127.0.0.1:7700 -scores
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/trace"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-query failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proxyAddr = flag.String("proxy", "127.0.0.1:7700", "proxy address")
		product   = flag.String("product", "", "product id to query")
		quality   = flag.String("quality", "good", "quality-check outcome: good|bad")
		scores    = flag.Bool("scores", false, "fetch the public reputation table instead")
		audit     = flag.Bool("audit", false, "fetch and verify the tamper-evident score history")
		jsonOut   = flag.Bool("json", false, "emit the query's canonical wide event as JSON instead of the human rendering")
		sample    = flag.Float64("trace-sample", 0, "client-side trace sampling rate in [0,1]")
		logCfg    obs.LogConfig
		tcfg      node.ClientConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	tcfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if _, err := logCfg.Setup(os.Stderr); err != nil {
		return err
	}
	obs.RegisterProcessMetrics(obs.Default)
	trace.Default.SetService("query")
	trace.Default.SetSampleRate(*sample)
	// Query results render to stdout below — that is the command's output,
	// not logging; diagnostics go through slog.
	client := node.NewProxyClient(*proxyAddr, tcfg.Options()...)
	defer client.Close()

	if *audit {
		entries, err := client.AuditLog(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("audit chain verified: %d entries\n", len(entries))
		for _, entry := range entries {
			fmt.Printf("  #%-4d %-12s %+6.2f  product=%s  %s\n",
				entry.Seq, entry.Event.Participant, entry.Event.Delta,
				entry.Event.Product, entry.Event.Reason)
		}
		return nil
	}

	if *scores {
		table, err := client.Scores(context.Background())
		if err != nil {
			return err
		}
		ids := make([]poc.ParticipantID, 0, len(table))
		for v := range table {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool {
			if table[ids[i]] != table[ids[j]] {
				return table[ids[i]] > table[ids[j]]
			}
			return ids[i] < ids[j]
		})
		fmt.Println("public reputation scores:")
		for _, v := range ids {
			fmt.Printf("  %-12s %+.2f\n", v, table[v])
		}
		return nil
	}

	if *product == "" {
		return fmt.Errorf("-product is required (or use -scores)")
	}
	var q core.Quality
	switch *quality {
	case "good":
		q = core.Good
	case "bad":
		q = core.Bad
	default:
		return fmt.Errorf("unknown quality %q (want good|bad)", *quality)
	}

	ctx, span := trace.Default.Start(context.Background(), "query.query_path",
		trace.String("product", *product), trace.String("quality", *quality))
	queryStart := time.Now()
	result, err := client.QueryPath(ctx, poc.ProductID(*product), q)
	span.SetError(err)
	span.End()
	if err != nil {
		return err
	}
	if *jsonOut {
		return printEvent(result, *product, *quality, queryStart)
	}
	if len(result.Path) == 0 {
		fmt.Printf("no participant admits processing %s — no verifiable origin exists\n", *product)
		// A dead-end query still carries evidence: any violations recorded
		// before the walk stalled name the participants whose answers were
		// caught lying. Swallowing them here hid exactly the partial
		// failures an investigator most needs.
		printViolations(result.Violations)
		printTraceID(result.TraceID)
		return nil
	}
	fmt.Printf("product %s (%s query, task %s):\n", result.Product, *quality, result.TaskID)
	for i, v := range result.Path {
		if tr, ok := result.Traces[v]; ok {
			fmt.Printf("  hop %d: %-12s trace=%q\n", i+1, v, tr.Data)
		} else {
			fmt.Printf("  hop %d: %-12s (identified, no trace recovered)\n", i+1, v)
		}
	}
	fmt.Printf("  complete=%v\n", result.Complete)
	printViolations(result.Violations)
	printTraceID(result.TraceID)
	return nil
}

// printEvent emits the query's canonical wide event as indented JSON. The
// proxy assembles it server-side and ships it with the path result; a proxy
// predating the flight recorder returns none, so synthesize a client-side
// approximation from the result to keep -json machine-parseable either way.
func printEvent(result *core.Result, product, quality string, start time.Time) error {
	ev := result.Event
	if ev == nil {
		ev = events.New(events.KindQuery, start)
		ev.Service = "query"
		ev.DurationUS = time.Since(start).Microseconds()
		ev.TraceID = result.TraceID
		ev.Product = product
		ev.Quality = quality
		ev.TaskID = result.TaskID
		ev.PathLen = len(result.Path)
		ev.Complete = result.Complete
		switch {
		case result.TaskID == "":
			ev.Outcome = events.OutcomeNoOrigin
		case result.Complete:
			ev.Outcome = events.OutcomeComplete
		default:
			ev.Outcome = events.OutcomeIncomplete
		}
		for _, v := range result.Violations {
			ev.Violations = append(ev.Violations, events.Violation{
				Participant: string(v.Participant),
				Type:        v.Type.String(),
				Detail:      v.Detail,
			})
		}
	}
	out, err := json.MarshalIndent(ev, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func printViolations(violations []core.Violation) {
	for _, violation := range violations {
		fmt.Printf("  VIOLATION by %s: %s (%s)\n", violation.Participant, violation.Type, violation.Detail)
	}
}

// printTraceID surfaces the proxy-side trace ID so an operator can pull the
// per-hop span timeline from the proxy's /debug/traces/<id> endpoint.
func printTraceID(id string) {
	if id != "" {
		fmt.Printf("  trace=%s (see /debug/traces/%s on the proxy admin endpoint)\n", id, id)
	}
}
