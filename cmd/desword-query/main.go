// Command desword-query is the supply-chain application client: it asks a
// running desword-proxy for a product's verifiable path information (good or
// bad flavour) and for the public reputation table.
//
// Usage:
//
//	desword-query -proxy 127.0.0.1:7700 -product drug-1 -quality good
//	desword-query -proxy 127.0.0.1:7700 -batch drug-1 drug-2 drug-3
//	echo drug-1 | desword-query -proxy 127.0.0.1:7700 -batch
//	desword-query -proxy 127.0.0.1:7700 -scores
//
// -batch sends one query_path_batch message for every id given as positional
// arguments (or, with none, one id per stdin line) and reports each id's
// outcome independently — one unreachable product never fails the rest.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"desword/internal/core"
	"desword/internal/events"
	"desword/internal/node"
	"desword/internal/obs"
	"desword/internal/poc"
	"desword/internal/trace"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-query failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proxyAddr = flag.String("proxy", "127.0.0.1:7700", "proxy address")
		product   = flag.String("product", "", "product id to query")
		batch     = flag.Bool("batch", false, "batch mode: query every product id given as an argument (or per stdin line) in one round trip")
		quality   = flag.String("quality", "good", "quality-check outcome: good|bad")
		scores    = flag.Bool("scores", false, "fetch the public reputation table instead")
		audit     = flag.Bool("audit", false, "fetch and verify the tamper-evident score history")
		jsonOut   = flag.Bool("json", false, "emit the query's canonical wide event as JSON instead of the human rendering")
		sample    = flag.Float64("trace-sample", 0, "client-side trace sampling rate in [0,1]")
		logCfg    obs.LogConfig
		tcfg      node.ClientConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	tcfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if _, err := logCfg.Setup(os.Stderr); err != nil {
		return err
	}
	obs.RegisterProcessMetrics(obs.Default)
	trace.Default.SetService("query")
	trace.Default.SetSampleRate(*sample)
	// Query results render to stdout below — that is the command's output,
	// not logging; diagnostics go through slog.
	client := node.NewProxyClient(*proxyAddr, tcfg.Options()...)
	defer client.Close()

	if *audit {
		entries, err := client.AuditLog(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("audit chain verified: %d entries\n", len(entries))
		for _, entry := range entries {
			fmt.Printf("  #%-4d %-12s %+6.2f  product=%s  %s\n",
				entry.Seq, entry.Event.Participant, entry.Event.Delta,
				entry.Event.Product, entry.Event.Reason)
		}
		return nil
	}

	if *scores {
		table, err := client.Scores(context.Background())
		if err != nil {
			return err
		}
		ids := make([]poc.ParticipantID, 0, len(table))
		for v := range table {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool {
			if table[ids[i]] != table[ids[j]] {
				return table[ids[i]] > table[ids[j]]
			}
			return ids[i] < ids[j]
		})
		fmt.Println("public reputation scores:")
		for _, v := range ids {
			fmt.Printf("  %-12s %+.2f\n", v, table[v])
		}
		return nil
	}

	var q core.Quality
	switch *quality {
	case "good":
		q = core.Good
	case "bad":
		q = core.Bad
	default:
		return fmt.Errorf("unknown quality %q (want good|bad)", *quality)
	}

	if *batch {
		ids, err := batchIDs(flag.Args())
		if err != nil {
			return err
		}
		return runBatch(client, ids, q, *quality, *jsonOut)
	}

	if *product == "" {
		return fmt.Errorf("-product is required (or use -batch or -scores)")
	}

	ctx, span := trace.Default.Start(context.Background(), "query.query_path",
		trace.String("product", *product), trace.String("quality", *quality))
	queryStart := time.Now()
	result, err := client.QueryPath(ctx, poc.ProductID(*product), q)
	span.SetError(err)
	span.End()
	if err != nil {
		return err
	}
	if *jsonOut {
		return printEvent(result, *product, *quality, queryStart)
	}
	if len(result.Path) == 0 {
		fmt.Printf("no participant admits processing %s — no verifiable origin exists\n", *product)
		// A dead-end query still carries evidence: any violations recorded
		// before the walk stalled name the participants whose answers were
		// caught lying. Swallowing them here hid exactly the partial
		// failures an investigator most needs.
		printViolations(result.Violations)
		printTraceID(result.TraceID)
		return nil
	}
	fmt.Printf("product %s (%s query, task %s):\n", result.Product, *quality, result.TaskID)
	for i, v := range result.Path {
		if tr, ok := result.Traces[v]; ok {
			fmt.Printf("  hop %d: %-12s trace=%q\n", i+1, v, tr.Data)
		} else {
			fmt.Printf("  hop %d: %-12s (identified, no trace recovered)\n", i+1, v)
		}
	}
	fmt.Printf("  complete=%v\n", result.Complete)
	printViolations(result.Violations)
	printTraceID(result.TraceID)
	return nil
}

// batchIDs collects the batch's product ids from the positional arguments,
// or — with none — one id per stdin line (blank lines skipped), so id lists
// pipe in from files and other tools.
func batchIDs(args []string) ([]poc.ProductID, error) {
	var ids []poc.ProductID
	if len(args) > 0 {
		for _, a := range args {
			ids = append(ids, poc.ProductID(a))
		}
		return ids, nil
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if id := strings.TrimSpace(sc.Text()); id != "" {
			ids = append(ids, poc.ProductID(id))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading product ids from stdin: %w", err)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-batch needs product ids (arguments or stdin lines)")
	}
	return ids, nil
}

// batchJSON is the -json rendering of one batch: the batch trace id plus one
// entry per id, each carrying the query's canonical wide event or its error.
type batchJSON struct {
	TraceID string          `json:"trace_id,omitempty"`
	Items   []batchItemJSON `json:"items"`
}

type batchItemJSON struct {
	Product string        `json:"product"`
	Error   string        `json:"error,omitempty"`
	Shed    bool          `json:"shed,omitempty"`
	Event   *events.Event `json:"event,omitempty"`
}

// runBatch sends one query_path_batch round trip and renders the per-id
// outcomes. The command exits zero as long as the batch itself ran —
// per-id failures are data, reported inline.
func runBatch(client *node.ProxyClient, ids []poc.ProductID, q core.Quality, quality string, jsonOut bool) error {
	ctx, span := trace.Default.Start(context.Background(), "query.query_path_batch",
		trace.Int("batch_size", len(ids)), trace.String("quality", quality))
	result, err := client.QueryPathBatch(ctx, ids, q)
	span.SetError(err)
	span.End()
	if err != nil {
		return err
	}
	if jsonOut {
		out := batchJSON{TraceID: result.TraceID, Items: make([]batchItemJSON, len(result.Items))}
		for i, item := range result.Items {
			j := batchItemJSON{Product: string(item.Product), Shed: item.Shed}
			if item.Err != nil {
				j.Error = item.Err.Error()
			} else if item.Result != nil {
				j.Event = item.Result.Event
			}
			out.Items[i] = j
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	var ok, failed, shed int
	fmt.Printf("batch of %d %s queries (trace=%s):\n", len(ids), quality, result.TraceID)
	for _, item := range result.Items {
		switch {
		case item.Shed:
			shed++
			fmt.Printf("  %-12s SHED: %v\n", item.Product, item.Err)
		case item.Err != nil:
			failed++
			fmt.Printf("  %-12s ERROR: %v\n", item.Product, item.Err)
		case item.Result == nil || len(item.Result.Path) == 0:
			ok++
			fmt.Printf("  %-12s no verifiable origin\n", item.Product)
		default:
			ok++
			fmt.Printf("  %-12s path=%d hops complete=%v violations=%d task=%s\n",
				item.Product, len(item.Result.Path), item.Result.Complete,
				len(item.Result.Violations), item.Result.TaskID)
		}
	}
	fmt.Printf("  %d ok, %d failed, %d shed\n", ok, failed, shed)
	return nil
}

// printEvent emits the query's canonical wide event as indented JSON. The
// proxy assembles it server-side and ships it with the path result; a proxy
// predating the flight recorder returns none, so synthesize a client-side
// approximation from the result to keep -json machine-parseable either way.
func printEvent(result *core.Result, product, quality string, start time.Time) error {
	ev := result.Event
	if ev == nil {
		ev = events.New(events.KindQuery, start)
		ev.Service = "query"
		ev.DurationUS = time.Since(start).Microseconds()
		ev.TraceID = result.TraceID
		ev.Product = product
		ev.Quality = quality
		ev.TaskID = result.TaskID
		ev.PathLen = len(result.Path)
		ev.Complete = result.Complete
		switch {
		case result.TaskID == "":
			ev.Outcome = events.OutcomeNoOrigin
		case result.Complete:
			ev.Outcome = events.OutcomeComplete
		default:
			ev.Outcome = events.OutcomeIncomplete
		}
		for _, v := range result.Violations {
			ev.Violations = append(ev.Violations, events.Violation{
				Participant: string(v.Participant),
				Type:        v.Type.String(),
				Detail:      v.Detail,
			})
		}
	}
	out, err := json.MarshalIndent(ev, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func printViolations(violations []core.Violation) {
	for _, violation := range violations {
		fmt.Printf("  VIOLATION by %s: %s (%s)\n", violation.Participant, violation.Type, violation.Detail)
	}
}

// printTraceID surfaces the proxy-side trace ID so an operator can pull the
// per-hop span timeline from the proxy's /debug/traces/<id> endpoint.
func printTraceID(id string) {
	if id != "" {
		fmt.Printf("  trace=%s (see /debug/traces/%s on the proxy admin endpoint)\n", id, id)
	}
}
