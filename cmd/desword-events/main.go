// Command desword-events is the offline analyzer for the flight recorder's
// JSONL journals: it scans a journal directory (written by desword-proxy,
// desword-participant or desword-sim with -events-dir), prints aggregate
// counts and query latency quantiles, shows the slowest queries with their
// per-hop timing breakdowns, and diffs two journals metric by metric for
// regression triage.
//
// Usage:
//
//	desword-events -dir /var/log/desword/events
//	desword-events -dir events/ -kind query -outcome incomplete -top 10
//	desword-events -dir before/ -diff after/
//	desword-events -dir events/ -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"desword/internal/events"
)

func main() {
	if err := run(); err != nil {
		slog.Error("desword-events failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir     = flag.String("dir", "", "journal directory to scan (required)")
		diffDir = flag.String("diff", "", "second journal directory: print a metric-by-metric diff (A=-dir, B=-diff)")
		kind    = flag.String("kind", "", "filter: event kind (query|node_request|campaign)")
		outcome = flag.String("outcome", "", "filter: outcome (complete|incomplete|no_origin|ok|error)")
		product = flag.String("product", "", "filter: product id substring")
		minMS   = flag.Int("min-ms", 0, "filter: minimum event duration in milliseconds")
		topN    = flag.Int("top", 5, "slowest query events to show with hop breakdowns (0 = none)")
		jsonOut = flag.Bool("json", false, "emit the summary (or diff rows) as JSON")
	)
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	filter := events.Filter{
		Kind:        events.Kind(*kind),
		Outcome:     events.Outcome(*outcome),
		Product:     *product,
		MinDuration: time.Duration(*minMS) * time.Millisecond,
	}

	summary, err := events.Summarize(*dir, filter, *topN)
	if err != nil {
		return err
	}

	if *diffDir != "" {
		other, err := events.Summarize(*diffDir, filter, 0)
		if err != nil {
			return err
		}
		rows := events.Diff(summary, other)
		if *jsonOut {
			return emitJSON(rows)
		}
		printDiff(*dir, *diffDir, rows)
		return nil
	}

	if *jsonOut {
		return emitJSON(summary)
	}
	printSummary(*dir, summary)
	return nil
}

func emitJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func printSummary(dir string, s *events.Summary) {
	fmt.Printf("journal %s: %d segment(s), %d line(s)", dir, s.Stats.Files, s.Stats.Lines)
	if s.Stats.Torn > 0 {
		fmt.Printf(", %d torn tail(s) skipped", s.Stats.Torn)
	}
	if s.Stats.Malformed > 0 {
		fmt.Printf(", %d malformed line(s) skipped", s.Stats.Malformed)
	}
	fmt.Printf("\n%d event(s) matched\n", s.Total)
	printCounts("by kind", s.ByKind)
	printCounts("by outcome", s.ByOutcome)
	printCounts("by quality", s.ByQuality)
	if s.Queries == 0 {
		return
	}
	l := s.QueryLatency
	fmt.Printf("queries: %d, hops: %d\n", s.Queries, s.Hops)
	fmt.Printf("query latency: mean=%s p50=%s p90=%s p99=%s max=%s\n",
		us(l.MeanUS), us(l.P50US), us(l.P90US), us(l.P99US), us(l.MaxUS))
	fmt.Printf("resources: cache_hits=%d cache_misses=%d pool_reused=%d pool_retries=%d\n",
		s.CacheHits, s.CacheMisses, s.PoolReused, s.PoolRetries)
	printCounts("violations", s.Violations)
	if len(s.Slowest) > 0 {
		fmt.Printf("slowest %d quer%s:\n", len(s.Slowest), plural(len(s.Slowest), "y", "ies"))
		for _, ev := range s.Slowest {
			printSlow(ev)
		}
	}
}

// printSlow renders one slow query with its per-hop timing breakdown — the
// "why was this one slow" view: which hop burned the time, and in which leg
// (prove round trip, proxy-side verify, ownership demand).
func printSlow(ev *events.Event) {
	fmt.Printf("  %s  %-10s product=%s path_len=%d", us(ev.DurationUS), ev.Outcome, ev.Product, ev.PathLen)
	if ev.TraceID != "" {
		fmt.Printf(" trace=%s", ev.TraceID)
	}
	fmt.Println()
	for i, h := range ev.Hops {
		fmt.Printf("    hop %d: %-12s identify=%s", i+1, h.Participant, us(h.IdentifyUS))
		if h.ProveUS > 0 {
			fmt.Printf(" prove=%s", us(h.ProveUS))
		}
		if h.VerifyUS > 0 {
			fmt.Printf(" verify=%s", us(h.VerifyUS))
		}
		if h.DemandUS > 0 {
			fmt.Printf(" demand=%s", us(h.DemandUS))
		}
		if h.Violations > 0 {
			fmt.Printf(" violations=%d", h.Violations)
		}
		if !h.Identified {
			fmt.Printf(" (not identified)")
		}
		fmt.Println()
	}
	if ev.HopsTruncated > 0 {
		fmt.Printf("    ... %d hop(s) truncated\n", ev.HopsTruncated)
	}
}

func printDiff(dirA, dirB string, rows []events.DiffRow) {
	fmt.Printf("diff: A=%s  B=%s\n", dirA, dirB)
	width := 0
	for _, r := range rows {
		if len(r.Metric) > width {
			width = len(r.Metric)
		}
	}
	for _, r := range rows {
		fmt.Printf("  %-*s  %12.1f  %12.1f  %+8.1f%%\n", width, r.Metric, r.A, r.B, r.DeltaPct)
	}
}

func printCounts(title string, m map[string]int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s:\n", title)
	for _, k := range keys {
		fmt.Printf("  %-16s %d\n", k, m[k])
	}
}

func us(v int64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.1fms", float64(v)/1000)
	}
	return fmt.Sprintf("%dus", v)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
